//! DDR3-1600 main-memory timing model.
//!
//! Models the paper's Table II memory: DDR3-1600 on an 800 MHz bus feeding
//! a 2.66 GHz core, 4 ranks × 8 banks with per-bank open-row (page-mode)
//! buffers over 4 KB pages, tRP-tCL-tRCD = 11-11-11 memory cycles, and a
//! shared 64-bit data bus (8-beat burst per 64-byte line).
//!
//! The model is latency-resolving: [`Dram::access`] immediately computes
//! the CPU cycle at which the line's data is available, reserving the bank
//! and data bus in the process. Requests to a busy bank queue behind it;
//! requests to different banks overlap — this is what lets memory-level
//! parallelism pay off.

/// DDR3 timing and geometry parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Core frequency in GHz (2.66 for the baseline).
    pub cpu_freq_ghz: f64,
    /// Memory bus frequency in MHz (800 for DDR3-1600).
    pub bus_freq_mhz: f64,
    /// Number of ranks.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer (DRAM page) size in bytes.
    pub page_bytes: u64,
    /// Row-precharge latency in memory cycles.
    pub t_rp: u64,
    /// CAS latency in memory cycles.
    pub t_cl: u64,
    /// RAS-to-CAS latency in memory cycles.
    pub t_rcd: u64,
    /// Data-burst duration in memory cycles (64 B over a 64-bit DDR bus).
    pub burst: u64,
    /// Fixed memory-controller overhead in memory cycles (request queueing,
    /// command scheduling, and the on-chip path to the controller), paid
    /// once per access on top of the device timing.
    pub controller: u64,
}

impl DramConfig {
    /// The paper's Table II configuration.
    #[must_use]
    pub fn ddr3_1600() -> Self {
        DramConfig {
            cpu_freq_ghz: 2.66,
            bus_freq_mhz: 800.0,
            ranks: 4,
            banks_per_rank: 8,
            page_bytes: 4096,
            t_rp: 11,
            t_cl: 11,
            t_rcd: 11,
            burst: 4,
            controller: 20,
        }
    }

    /// CPU cycles per memory-bus cycle.
    #[must_use]
    pub fn cpu_per_mem_cycle(&self) -> f64 {
        self.cpu_freq_ghz * 1000.0 / self.bus_freq_mhz
    }

    /// Total number of banks.
    #[must_use]
    pub fn num_banks(&self) -> usize {
        self.ranks * self.banks_per_rank
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr3_1600()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64, // memory cycles
}

/// Row-buffer hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that required activating (and possibly precharging) a row.
    pub row_misses: u64,
}

/// The DRAM device: per-bank state plus the shared data bus.
///
/// # Examples
///
/// ```
/// use rar_mem::{Dram, DramConfig};
/// let mut d = Dram::new(DramConfig::ddr3_1600());
/// let first = d.access(0x10_0000, 0);
/// let second = d.access(0x10_0040, first); // same row: faster
/// assert!(second - first < first);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    bus_free: u64, // memory cycles
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM device with all banks idle and rows closed.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![Bank::default(); config.num_banks()];
        Dram {
            config,
            banks,
            bus_free: 0,
            stats: DramStats::default(),
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Row-buffer statistics.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let page = addr / self.config.page_bytes;
        let bank = (page as usize) % self.banks.len();
        let row = page / self.banks.len() as u64;
        (bank, row)
    }

    /// Issues a line fetch for `addr` at CPU cycle `now`; returns the CPU
    /// cycle at which the data is available at the memory controller.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        self.access_info(addr, now).complete_at
    }

    /// Like [`Dram::access`], but also reports the row-buffer outcome and
    /// the bank that served the request (for transaction tracing).
    pub fn access_info(&mut self, addr: u64, now: u64) -> DramAccessInfo {
        let ratio = self.config.cpu_per_mem_cycle();
        let now_mem = (now as f64 / ratio).ceil() as u64 + self.config.controller;
        let (bank_idx, row) = self.bank_and_row(addr);
        let bank = &mut self.banks[bank_idx];

        let start = now_mem.max(bank.busy_until);
        let row_hit = bank.open_row == Some(row);
        let access_lat = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.config.t_cl
            }
            Some(_) => {
                self.stats.row_misses += 1;
                self.config.t_rp + self.config.t_rcd + self.config.t_cl
            }
            None => {
                self.stats.row_misses += 1;
                self.config.t_rcd + self.config.t_cl
            }
        };
        bank.open_row = Some(row);

        // Data transfer occupies the shared bus after the column access.
        let data_start = (start + access_lat).max(self.bus_free);
        let complete_mem = data_start + self.config.burst;
        self.bus_free = complete_mem;
        // Column accesses are pipelined behind the CAS latency: the bank
        // can accept the next column command once the current burst has
        // drained, so sequential row hits stream at burst rate rather than
        // serializing on tCL.
        bank.busy_until = complete_mem.saturating_sub(self.config.t_cl);

        DramAccessInfo {
            complete_at: (complete_mem as f64 * ratio).ceil() as u64,
            row_hit,
            bank: bank_idx,
        }
    }
}

/// Timing and row-buffer outcome of one access (see [`Dram::access_info`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccessInfo {
    /// CPU cycle at which the data is available at the memory controller.
    pub complete_at: u64,
    /// The request hit the bank's open row.
    pub row_hit: bool,
    /// Index of the bank that served the request.
    pub bank: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::ddr3_1600())
    }

    #[test]
    fn cold_access_latency_is_hundreds_of_cpu_cycles_scale() {
        let mut d = dram();
        let done = d.access(0x1000, 0);
        // controller + tRCD + tCL + burst = 46 mem cycles ~= 153 CPU cycles.
        let expect = ((20.0 + 26.0) * d.config().cpu_per_mem_cycle()).ceil() as u64;
        assert_eq!(done, expect);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = dram();
        let t1 = d.access(0x10_0000, 0);
        let hit = d.access(0x10_0040, t1) - t1; // same page
        let mut d2 = dram();
        let t2 = d2.access(0x10_0000, 0);
        // Same bank, different row: page + page_bytes*num_banks.
        let conflict_addr = 0x10_0000 + 4096 * 32;
        let miss = d2.access(conflict_addr, t2) - t2;
        assert!(hit < miss, "row hit {hit} should beat row miss {miss}");
    }

    #[test]
    fn bank_parallelism_overlaps() {
        let mut d = dram();
        // Two different banks, issued at the same time.
        let a = d.access(0x0000, 0); // bank 0
        let b = d.access(0x1000, 0); // bank 1 (next 4K page)
                                     // Serial would be ~2x; overlap means b completes shortly after a
                                     // (only bus serialization apart).
        let burst_cpu = (d.config().burst as f64 * d.config().cpu_per_mem_cycle()).ceil() as u64;
        assert!(b <= a + burst_cpu + 1, "bank-parallel: a={a} b={b}");
    }

    #[test]
    fn same_bank_requests_queue() {
        let mut d = dram();
        let a = d.access(0x0000, 0);
        // Same bank (same page even): row hit but must wait for bank.
        let b = d.access(0x0040, 0);
        assert!(b > a, "second same-bank access queues: a={a} b={b}");
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut d = dram();
        let t = d.access(0x2000, 0);
        let _ = d.access(0x2040, t);
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn access_info_reports_row_outcome() {
        let mut d = dram();
        let first = d.access_info(0x2000, 0);
        assert!(!first.row_hit);
        let second = d.access_info(0x2040, first.complete_at);
        assert!(second.row_hit, "same page reuses the open row");
        assert_eq!(second.bank, first.bank);
    }

    #[test]
    fn monotone_in_issue_time() {
        let mut d1 = dram();
        let early = d1.access(0x5000, 0);
        let mut d2 = dram();
        let late = d2.access(0x5000, 10_000);
        assert!(late > early);
    }

    #[test]
    fn cpu_mem_ratio_matches_table2() {
        let c = DramConfig::ddr3_1600();
        assert!((c.cpu_per_mem_cycle() - 3.325).abs() < 1e-9);
        assert_eq!(c.num_banks(), 32);
    }
}
