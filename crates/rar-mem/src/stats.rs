//! Memory-system statistics.

use crate::hierarchy::HitLevel;

/// Aggregate counters for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand data accesses (loads + stores) that hit in the L1-D.
    pub l1d_hits: u64,
    /// Demand data accesses served by the L2.
    pub l2_hits: u64,
    /// Demand data accesses served by the L3.
    pub l3_hits: u64,
    /// Demand data accesses served by main memory (LLC misses).
    pub llc_misses: u64,
    /// Instruction fetches that hit in the L1-I.
    pub l1i_hits: u64,
    /// Instruction fetches that missed the L1-I.
    pub l1i_misses: u64,
    /// Demand accesses merged into an in-flight fetch.
    pub mshr_merges: u64,
    /// Demand misses rejected because every MSHR was busy.
    pub mshr_stalls: u64,
    /// Prefetch lines issued to the memory system.
    pub prefetches_issued: u64,
    /// Runahead-speculative loads issued.
    pub runahead_loads: u64,
}

impl MemStats {
    /// Records a demand data access that resolved at `level`.
    pub fn record_data(&mut self, level: HitLevel) {
        match level {
            HitLevel::L1 => self.l1d_hits += 1,
            HitLevel::L2 => self.l2_hits += 1,
            HitLevel::L3 => self.l3_hits += 1,
            HitLevel::Memory => self.llc_misses += 1,
        }
    }

    /// Total demand data accesses observed.
    #[must_use]
    pub fn data_accesses(&self) -> u64 {
        self.l1d_hits + self.l2_hits + self.l3_hits + self.llc_misses
    }

    /// LLC misses per 1000 of the given instruction count.
    #[must_use]
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.llc_misses as f64 * 1000.0 / instructions as f64
    }

    /// Accumulates every counter into `registry` under
    /// `rar_mem_<field>_total`, so a sweep session can aggregate memory
    /// traffic across its cells. The field list here must stay exhaustive
    /// — `cargo xtask lint` checks that each `MemStats` field is recorded.
    pub fn record_into(&self, registry: &rar_telemetry::MetricsRegistry) {
        for (name, value) in [
            ("l1d_hits", self.l1d_hits),
            ("l2_hits", self.l2_hits),
            ("l3_hits", self.l3_hits),
            ("llc_misses", self.llc_misses),
            ("l1i_hits", self.l1i_hits),
            ("l1i_misses", self.l1i_misses),
            ("mshr_merges", self.mshr_merges),
            ("mshr_stalls", self.mshr_stalls),
            ("prefetches_issued", self.prefetches_issued),
            ("runahead_loads", self.runahead_loads),
        ] {
            registry
                .counter(&format!("rar_mem_{name}_total"))
                .add(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_levels() {
        let mut s = MemStats::default();
        s.record_data(HitLevel::L1);
        s.record_data(HitLevel::Memory);
        s.record_data(HitLevel::Memory);
        assert_eq!(s.l1d_hits, 1);
        assert_eq!(s.llc_misses, 2);
        assert_eq!(s.data_accesses(), 3);
    }

    #[test]
    fn record_into_covers_every_field_and_accumulates() {
        let reg = rar_telemetry::MetricsRegistry::new();
        let s = MemStats {
            llc_misses: 3,
            l1d_hits: 9,
            ..MemStats::default()
        };
        s.record_into(&reg);
        s.record_into(&reg);
        assert_eq!(reg.counter("rar_mem_llc_misses_total").get(), 6);
        assert_eq!(reg.counter("rar_mem_l1d_hits_total").get(), 18);
        // One counter per MemStats field.
        assert_eq!(reg.len(), 10);
    }

    #[test]
    fn mpki_definition() {
        let s = MemStats {
            llc_misses: 8,
            ..MemStats::default()
        };
        assert!((s.mpki(1000) - 8.0).abs() < 1e-12);
        assert_eq!(s.mpki(0), 0.0);
    }
}
