//! Set-associative cache with true-LRU replacement.
//!
//! Tag-only timing model: the simulator never stores data, only presence.
//! Lines are installed at access-resolution time; availability timing for
//! in-flight fills is handled by the MSHR file in
//! [`crate::hierarchy::MemoryHierarchy`], not here.

use rar_isa::cache_line;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (64 everywhere in this workspace).
    pub line_bytes: u64,
    /// Access latency in CPU cycles, paid on the path to this level.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets, or a non-power-of-two
    /// set count).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        let sets = (self.size_bytes / (self.line_bytes * self.assoc as u64)) as usize;
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    /// Monotonic timestamp of last touch, for true LRU.
    last_use: u64,
}

/// A set-associative, true-LRU, tag-only cache.
///
/// # Examples
///
/// ```
/// use rar_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig {
///     size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 4,
/// });
/// assert!(!c.probe(0x0));
/// c.insert(0x0, 1);
/// assert!(c.probe(0x0));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Way>,
    num_sets: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate; see [`CacheConfig::num_sets`].
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        Cache {
            config,
            sets: vec![Way::default(); num_sets * config.assoc],
            num_sets,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// This level's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = cache_line(addr) / self.config.line_bytes;
        let set = (line as usize) & (self.num_sets - 1);
        let tag = line >> self.num_sets.trailing_zeros();
        (set, tag)
    }

    fn ways(&mut self, set: usize) -> &mut [Way] {
        let a = self.config.assoc;
        &mut self.sets[set * a..(set + 1) * a]
    }

    /// Looks up `addr`; on hit, refreshes LRU state and returns `true`.
    /// Updates hit/miss statistics.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        for way in self.ways(set) {
            if way.valid && way.tag == tag {
                way.last_use = tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Fault injection: corrupts the way at flat `slot` (set-major order,
    /// modulo-reduced). Bit 39 models a valid-bit strike (the line is
    /// silently dropped and refetched on next use); other bits flip tag
    /// bits, so the original line re-misses and an aliased address may
    /// spuriously hit. Both are timing-only in a model without data.
    /// Returns `false` when the addressed way is invalid (vacant).
    pub fn corrupt_way(&mut self, slot: usize, bit: u64) -> bool {
        let n = self.sets.len();
        let way = &mut self.sets[slot % n];
        if !way.valid {
            return false;
        }
        if bit % 40 == 39 {
            way.valid = false;
        } else {
            way.tag ^= 1 << (bit % 39);
        }
        true
    }

    /// Checks for presence without perturbing LRU state or statistics.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let a = self.config.assoc;
        self.sets[set * a..(set + 1) * a]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Installs the line containing `addr`, evicting the LRU way if needed.
    /// Returns the evicted line address, if a valid line was displaced.
    pub fn insert(&mut self, addr: u64, now: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick.max(now);
        let (set, tag) = self.set_and_tag(addr);
        let line_bytes = self.config.line_bytes;
        let sets_log2 = self.num_sets.trailing_zeros();

        // Already present: refresh.
        for way in self.ways(set) {
            if way.valid && way.tag == tag {
                way.last_use = tick;
                return None;
            }
        }
        // Prefer an invalid way, else evict LRU.
        let victim = {
            let ways = self.ways(set);
            let idx = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| (w.valid, w.last_use))
                .map(|(i, _)| i)
                .expect("associativity is nonzero");
            &mut ways[idx]
        };
        let evicted = victim
            .valid
            .then(|| ((victim.tag << sets_log2) | set as u64) * line_bytes);
        *victim = Way {
            tag,
            valid: true,
            last_use: tick,
        };
        evicted
    }

    /// Invalidates the line containing `addr`, if present.
    pub fn invalidate(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        for way in self.ways(set) {
            if way.valid && way.tag == tag {
                way.valid = false;
            }
        }
    }

    /// Demand hits observed so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways x 64B = 256B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = small();
        assert!(!c.access(0x100));
        c.insert(0x100, 0);
        assert!(c.access(0x100));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = small();
        c.insert(0x1000, 0);
        assert!(c.access(0x103f)); // same 64B line
        assert!(c.access(0x1004));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set index = bit 6. Keep all in set 0: line addresses multiple of 128.
        c.insert(0x000, 0);
        c.insert(0x080, 0); // different set (bit 6 set)? 0x80/64=2 -> set 0. yes set 0.
                            // touch 0x000 so 0x080 is LRU
        assert!(c.access(0x000));
        let evicted = c.insert(0x100, 0); // set 0 again; evicts 0x080
        assert_eq!(evicted, Some(0x080));
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn evicted_address_reconstruction() {
        let mut c = small();
        c.insert(0x00de_adc0, 0);
        c.insert(0x00de_adc0 + 0x100, 0);
        let ev = c.insert(0x00de_adc0 + 0x200, 0);
        assert_eq!(ev, Some(cache_line_of(0x00de_adc0)));
    }

    fn cache_line_of(a: u64) -> u64 {
        rar_isa::cache_line(a)
    }

    #[test]
    fn insert_existing_is_refresh_not_evict() {
        let mut c = small();
        c.insert(0x000, 0);
        c.insert(0x080, 0);
        assert!(c.insert(0x000, 0).is_none()); // refresh
        let ev = c.insert(0x100, 0);
        assert_eq!(ev, Some(0x080), "0x080 became LRU after refresh of 0x000");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.insert(0x40, 0);
        assert!(c.probe(0x40));
        c.invalidate(0x40);
        assert!(!c.probe(0x40));
    }

    #[test]
    fn probe_does_not_count_stats() {
        let mut c = small();
        c.insert(0x40, 0);
        let _ = c.probe(0x40);
        let _ = c.probe(0x80);
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn table2_geometries_are_valid() {
        for (size, assoc) in [
            (32 * 1024, 4),
            (32 * 1024, 8),
            (256 * 1024, 8),
            (1024 * 1024, 16),
        ] {
            let c = CacheConfig {
                size_bytes: size,
                assoc,
                line_bytes: 64,
                latency: 1,
            };
            assert!(c.num_sets() > 0);
        }
    }
}
