//! Aggressive stride prefetcher (Section V-F).
//!
//! The paper evaluates RAR against "an aggressive stride-based hardware
//! prefetcher with up to 16 streams" attached either at the LLC or at all
//! three cache levels. This module implements the classic per-PC stride
//! table: each entry tracks the last address and stride observed for one
//! load PC; two consecutive confirmations of the same stride train the
//! stream, after which every access issues `degree` prefetches ahead.

use rar_isa::cache_line;

/// Stride-prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridePrefetcherConfig {
    /// Maximum simultaneously-tracked streams (16 in the paper).
    pub streams: usize,
    /// Prefetch degree: lines fetched ahead once a stream is trained.
    pub degree: usize,
    /// Confidence needed before issuing prefetches.
    pub train_threshold: u8,
}

impl StridePrefetcherConfig {
    /// The paper's aggressive 16-stream configuration.
    #[must_use]
    pub const fn aggressive() -> Self {
        StridePrefetcherConfig {
            streams: 16,
            degree: 4,
            train_threshold: 2,
        }
    }
}

impl Default for StridePrefetcherConfig {
    fn default() -> Self {
        StridePrefetcherConfig::aggressive()
    }
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    last_use: u64,
    valid: bool,
}

/// A per-PC stride-detecting prefetcher.
///
/// # Examples
///
/// ```
/// use rar_mem::{StridePrefetcher, StridePrefetcherConfig};
/// let mut p = StridePrefetcher::new(StridePrefetcherConfig::aggressive());
/// assert!(p.observe(0x400, 0x1000).is_empty());
/// assert!(p.observe(0x400, 0x1040).is_empty());
/// let lines = p.observe(0x400, 0x1080); // trained: stride +0x40
/// assert_eq!(lines[0], 0x10c0);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    config: StridePrefetcherConfig,
    table: Vec<Stream>,
    tick: u64,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates an untrained prefetcher.
    #[must_use]
    pub fn new(config: StridePrefetcherConfig) -> Self {
        let table = vec![
            Stream {
                pc: 0,
                last_addr: 0,
                stride: 0,
                confidence: 0,
                last_use: 0,
                valid: false
            };
            config.streams
        ];
        StridePrefetcher {
            config,
            table,
            tick: 0,
            issued: 0,
        }
    }

    /// Observes a demand access by `pc` to `addr`; returns the line
    /// addresses to prefetch (empty until the stream is trained).
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        self.tick += 1;
        let tick = self.tick;
        let threshold = self.config.train_threshold;
        let degree = self.config.degree;

        let Some(slot) = self.table.iter().position(|s| s.valid && s.pc == pc) else {
            // Allocate: LRU over (valid, last_use).
            let i = self
                .table
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (s.valid, s.last_use))
                .map(|(i, _)| i)
                .expect("stream table is nonempty");
            self.table[i] = Stream {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                last_use: tick,
                valid: true,
            };
            return Vec::new();
        };

        let s = &mut self.table[slot];
        s.last_use = tick;
        let stride = addr as i64 - s.last_addr as i64;
        s.last_addr = addr;
        if stride == 0 {
            return Vec::new();
        }
        if stride == s.stride {
            s.confidence = s.confidence.saturating_add(1);
        } else {
            s.stride = stride;
            s.confidence = 1;
        }
        if s.confidence < threshold {
            return Vec::new();
        }

        let stride = s.stride;
        let mut lines = Vec::with_capacity(degree);
        let mut prev = u64::MAX;
        for d in 1..=degree {
            let target = addr as i64 + stride * d as i64;
            if target < 0 {
                break;
            }
            let line = cache_line(target as u64);
            if line != prev && line != cache_line(addr) {
                lines.push(line);
                prev = line;
            }
        }
        self.issued += lines.len() as u64;
        lines
    }

    /// Total prefetch lines issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The prefetcher configuration.
    #[must_use]
    pub fn config(&self) -> &StridePrefetcherConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(StridePrefetcherConfig::aggressive())
    }

    #[test]
    fn trains_after_threshold_confirmations() {
        let mut p = pf();
        assert!(p.observe(1, 0x1000).is_empty());
        assert!(p.observe(1, 0x1040).is_empty(), "first stride observation");
        let lines = p.observe(1, 0x1080);
        assert_eq!(lines, vec![0x10c0, 0x1100, 0x1140, 0x1180]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = pf();
        p.observe(1, 0x1000);
        p.observe(1, 0x1040);
        p.observe(1, 0x1080); // trained at +0x40
        assert!(p.observe(1, 0x5000).is_empty(), "new stride, retrain");
        assert!(
            p.observe(1, 0x9000).is_empty(),
            "stride 0x4000 confirmed once"
        );
        assert!(!p.observe(1, 0xd000).is_empty(), "trained at +0x4000");
    }

    #[test]
    fn negative_strides_supported() {
        let mut p = pf();
        p.observe(1, 0x9000);
        p.observe(1, 0x8fc0);
        let lines = p.observe(1, 0x8f80);
        assert_eq!(lines[0], 0x8f40);
    }

    #[test]
    fn sub_line_strides_dedupe_lines() {
        let mut p = pf();
        p.observe(1, 0x1000);
        p.observe(1, 0x1020);
        // Stride 0x20, degree 4: targets 0x1060/0x1080/0x10a0/0x10c0 span
        // only lines 0x1080 and 0x10c0 after dropping the demand line.
        let lines = p.observe(1, 0x1040);
        assert_eq!(lines, vec![0x1080, 0x10c0]);
        assert!(!lines.contains(&0x1040), "never prefetch the demand line");
    }

    #[test]
    fn streams_capacity_lru() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig {
            streams: 2,
            degree: 1,
            train_threshold: 2,
        });
        p.observe(1, 0x1000);
        p.observe(2, 0x2000);
        p.observe(3, 0x3000); // evicts pc=1
        p.observe(1, 0x1040); // reallocated, cold
        p.observe(1, 0x1080);
        assert!(p.observe(1, 0x10c0).len() == 1, "retrains after eviction");
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = pf();
        for _ in 0..10 {
            assert!(p.observe(7, 0x4242).is_empty());
        }
    }
}
