//! Memory-hierarchy substrate for the RAR simulator.
//!
//! Models the paper's Table II memory system from scratch:
//!
//! - three cache levels ([`cache`]): 32 KB L1-I (4-way, 2 cycles), 32 KB
//!   L1-D (8-way, 4 cycles), 256 KB private L2 (8-way, 8 cycles), 1 MB
//!   shared L3 (16-way, 30 cycles), all with true-LRU replacement and
//!   64-byte lines;
//! - a 20-entry L1-D miss-status holding register file ([`mshr`]) that
//!   merges same-line misses and bounds demand memory-level parallelism;
//! - a DDR3-1600 main-memory model ([`dram`]) with 4 ranks × 8 banks,
//!   per-bank row buffers, tRP-tCL-tRCD = 11-11-11 and a shared data bus;
//! - an optional aggressive stride prefetcher with up to 16 streams
//!   ([`prefetch`]), attachable at the LLC only (`+L3`) or at every level
//!   (`+ALL`) for the Section V-F experiment.
//!
//! The timing model is *latency-resolving*: when the core issues an access
//! at cycle `t`, the hierarchy immediately computes the completion cycle,
//! reserving DRAM bank/bus resources in the process. In-flight lines are
//! tracked by the MSHR file so that a second access to a line already being
//! fetched completes when the first fetch does, rather than starting a new
//! one.
//!
//! # Examples
//!
//! ```
//! use rar_mem::{AccessKind, MemoryHierarchy, MemConfig};
//!
//! let mut mem = MemoryHierarchy::new(MemConfig::baseline());
//! let cold = mem.access(AccessKind::Load, 0x10_0000, 0x400, 0).unwrap();
//! assert!(cold.complete_at > 100, "cold miss goes to DRAM");
//! let warm = mem.access(AccessKind::Load, 0x10_0000, 0x400, cold.complete_at).unwrap();
//! assert_eq!(warm.complete_at, cold.complete_at + 4, "L1-D hit costs 4 cycles");
//! ```

pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
pub mod stats;

pub use cache::{Cache, CacheConfig};
pub use config::{MemConfig, PrefetchPlacement};
pub use dram::{Dram, DramAccessInfo, DramConfig};
pub use hierarchy::{AccessKind, AccessOutcome, HitLevel, MemStall, MemoryHierarchy};
pub use mshr::MshrFile;
pub use prefetch::{StridePrefetcher, StridePrefetcherConfig};
pub use stats::MemStats;
