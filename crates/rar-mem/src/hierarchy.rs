//! The composed memory hierarchy: L1-I/L1-D/L2/L3 + MSHRs + DRAM +
//! optional stride prefetching.

use crate::cache::Cache;
use crate::config::{MemConfig, PrefetchPlacement};
use crate::dram::Dram;
use crate::mshr::MshrFile;
use crate::prefetch::StridePrefetcher;
use crate::stats::MemStats;
use rar_isa::cache_line;
use rar_trace::{ServedBy, TraceEvent};
use std::collections::HashMap;
use std::fmt;

/// The cache level (or memory) that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the first-level cache.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared L3 (LLC).
    L3,
    /// Served by main memory — an LLC miss.
    Memory,
}

impl HitLevel {
    /// True when the access missed the last-level cache.
    #[must_use]
    pub const fn is_llc_miss(self) -> bool {
        matches!(self, HitLevel::Memory)
    }
}

/// The kind of access presented to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load (normal or runahead mode).
    Load,
    /// Store. Stores never stall on MSHR exhaustion; a full file simply
    /// stops tracking the fill timing.
    Store,
    /// Instruction fetch (L1-I path).
    Ifetch,
}

/// Result of a resolved access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// CPU cycle at which the data is available to the core.
    pub complete_at: u64,
    /// Which level ultimately supplies the data.
    pub level: HitLevel,
    /// True if this access merged into an already-in-flight line fetch.
    pub merged: bool,
}

/// Why an access could not be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemStall {
    /// Every L1-D MSHR is occupied; retry once one frees up.
    MshrFull,
}

impl fmt::Display for MemStall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemStall::MshrFull => write!(f, "all L1-D MSHRs are busy"),
        }
    }
}

impl std::error::Error for MemStall {}

/// The full memory hierarchy of Table II.
///
/// See the [crate-level documentation](crate) for the timing model.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    mshr: MshrFile,
    dram: Dram,
    /// In-flight fills that do not hold a demand MSHR (prefetches,
    /// ifetches): line -> (complete_at, level).
    inflight_untracked: HashMap<u64, u64>,
    pf_l1: Option<StridePrefetcher>,
    pf_l2: Option<StridePrefetcher>,
    pf_l3: Option<StridePrefetcher>,
    stats: MemStats,
    /// Event log for the tracing subsystem; `None` (the default) keeps the
    /// access paths allocation-free. The core drains it every cycle via
    /// [`MemoryHierarchy::drain_trace`].
    trace: Option<Vec<TraceEvent>>,
}

impl MemoryHierarchy {
    /// Builds a cold hierarchy from `config`.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        let mk_pf = || Some(StridePrefetcher::new(config.prefetcher));
        let (pf_l1, pf_l2, pf_l3) = match config.prefetch {
            PrefetchPlacement::None => (None, None, None),
            PrefetchPlacement::L3 => (None, None, mk_pf()),
            PrefetchPlacement::All => (mk_pf(), mk_pf(), mk_pf()),
        };
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            mshr: MshrFile::new(config.mshrs),
            dram: Dram::new(config.dram),
            inflight_untracked: HashMap::new(),
            pf_l1,
            pf_l2,
            pf_l3,
            stats: MemStats::default(),
            trace: None,
            config,
        }
    }

    /// Turns on event logging for cache misses, MSHR activity and DRAM
    /// transactions. Idempotent; off by default.
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// True when event logging is on.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Moves all pending trace events into `buf` (appending), leaving the
    /// internal log empty but its capacity intact. No-op when tracing is
    /// off.
    pub fn drain_trace(&mut self, buf: &mut Vec<TraceEvent>) {
        if let Some(log) = &mut self.trace {
            buf.append(log);
        }
    }

    /// The hierarchy configuration.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Zeroes the aggregate statistics (cache/DRAM state is untouched);
    /// used when a measurement window starts after warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Number of demand misses currently in flight (for MLP accounting).
    pub fn outstanding_misses(&mut self, now: u64) -> usize {
        self.mshr.outstanding(now)
    }

    /// Counts one runahead-speculative load. Runahead loads travel the
    /// ordinary demand path, so the hierarchy cannot tell them apart on
    /// its own; the core reports each one explicitly after a successful
    /// [`MemoryHierarchy::access`].
    pub fn note_runahead_load(&mut self) {
        self.stats.runahead_loads += 1;
    }

    /// True if a demand load miss could allocate an MSHR at `now`.
    pub fn mshr_available(&mut self, now: u64) -> bool {
        self.mshr.has_free(now)
    }

    /// Whether the line containing `addr` is present in the data-side
    /// hierarchy at any level (no state perturbation).
    #[must_use]
    pub fn probe_data(&self, addr: u64) -> Option<HitLevel> {
        let line = cache_line(addr);
        if self.l1d.probe(line) {
            Some(HitLevel::L1)
        } else if self.l2.probe(line) {
            Some(HitLevel::L2)
        } else if self.l3.probe(line) {
            Some(HitLevel::L3)
        } else {
            None
        }
    }

    /// Presents an access to the hierarchy at CPU cycle `now` and resolves
    /// its timing.
    ///
    /// `pc` is the accessing instruction's program counter (used to train
    /// the stride prefetcher).
    ///
    /// # Errors
    ///
    /// Returns [`MemStall::MshrFull`] for a demand *load* miss when every
    /// MSHR is busy; the core must retry later. Stores and ifetches never
    /// stall.
    pub fn access(
        &mut self,
        kind: AccessKind,
        addr: u64,
        pc: u64,
        now: u64,
    ) -> Result<AccessOutcome, MemStall> {
        match kind {
            AccessKind::Ifetch => Ok(self.access_ifetch(addr, now)),
            AccessKind::Load | AccessKind::Store => self.access_data(kind, addr, pc, now),
        }
    }

    fn expire_untracked(&mut self, now: u64) {
        self.inflight_untracked.retain(|_, &mut done| done > now);
    }

    fn access_ifetch(&mut self, addr: u64, now: u64) -> AccessOutcome {
        let line = cache_line(addr);
        let lat = self.config.l1i.latency;
        if self.l1i.access(line) {
            self.stats.l1i_hits += 1;
            let done = now + lat;
            return AccessOutcome {
                complete_at: done,
                level: HitLevel::L1,
                merged: false,
            };
        }
        self.stats.l1i_misses += 1;
        // Instruction misses are served by L2/L3/DRAM like data, but do not
        // consume demand MSHRs.
        let (done, level) =
            self.fill_from_below(line, now + lat, /*install_l1d=*/ false, true);
        self.l1i.insert(line, now);
        if let Some(log) = &mut self.trace {
            log.push(TraceEvent::CacheMiss {
                cycle: now,
                pc: addr,
                line,
                served_by: served_by(level),
                complete_at: done,
            });
        }
        AccessOutcome {
            complete_at: done,
            level,
            merged: false,
        }
    }

    fn access_data(
        &mut self,
        kind: AccessKind,
        addr: u64,
        pc: u64,
        now: u64,
    ) -> Result<AccessOutcome, MemStall> {
        let line = cache_line(addr);
        self.expire_untracked(now);
        let l1_lat = self.config.l1d.latency;

        // Train the all-levels prefetcher on every demand access.
        if let Some(pf) = self.pf_l1.as_mut() {
            let lines = pf.observe(pc, addr);
            self.issue_prefetches(&lines, now, PrefetchTarget::AllLevels);
        }

        if self.l1d.access(line) {
            // Present in L1 — but possibly still in flight.
            let mut done = now + l1_lat;
            let mut merged = false;
            if let Some(pending) = self.mshr.lookup(line, now) {
                done = done.max(pending);
                merged = true;
                self.stats.mshr_merges += 1;
            } else if let Some(&pending) = self.inflight_untracked.get(&line) {
                done = done.max(pending);
                merged = true;
            }
            self.stats.record_data(HitLevel::L1);
            return Ok(AccessOutcome {
                complete_at: done,
                level: HitLevel::L1,
                merged,
            });
        }

        // L1-D miss: demand loads need an MSHR.
        if kind == AccessKind::Load && !self.mshr.has_free(now) {
            self.stats.mshr_stalls += 1;
            if let Some(log) = &mut self.trace {
                log.push(TraceEvent::MshrStall { cycle: now, line });
            }
            return Err(MemStall::MshrFull);
        }

        let (done, level) =
            self.fill_from_below(line, now + l1_lat, /*install_l1d=*/ true, true);
        if let Some(log) = &mut self.trace {
            log.push(TraceEvent::CacheMiss {
                cycle: now,
                pc,
                line,
                served_by: served_by(level),
                complete_at: done,
            });
        }
        if kind == AccessKind::Load {
            let ok = self.mshr.allocate(line, done, now);
            debug_assert!(ok, "MSHR availability checked above");
            if self.trace.is_some() {
                let outstanding = self.mshr.outstanding(now);
                if let Some(log) = &mut self.trace {
                    log.push(TraceEvent::MshrAlloc {
                        cycle: now,
                        line,
                        complete_at: done,
                        outstanding,
                    });
                }
            }
        } else {
            // Stores track the fill opportunistically.
            if !self.mshr.allocate(line, done, now) {
                self.inflight_untracked.insert(line, done);
            }
        }
        self.stats.record_data(level);
        Ok(AccessOutcome {
            complete_at: done,
            level,
            merged: false,
        })
    }

    /// Resolves a miss below the L1: walks L2, L3, DRAM; installs the line
    /// into the levels it passed through. `t` is the cycle the request
    /// leaves the L1. `train` is false for prefetch-initiated fills, which
    /// must not re-train the prefetchers (that would recurse). Returns
    /// (completion cycle, serving level).
    fn fill_from_below(
        &mut self,
        line: u64,
        t: u64,
        install_l1d: bool,
        train: bool,
    ) -> (u64, HitLevel) {
        let l2_lat = self.config.l2.latency;
        let l3_lat = self.config.l3.latency;

        let (done, level) = if self.l2.access(line) {
            (t + l2_lat, HitLevel::L2)
        } else {
            // Train the L3 prefetcher on accesses that reach the LLC. LLC
            // streams are keyed by 4 KB region rather than PC: the LLC does
            // not see program counters, only addresses.
            if train {
                if let Some(pf) = self.pf_l3.as_mut() {
                    let lines = pf.observe(line >> 12, line);
                    self.issue_prefetches(&lines, t, PrefetchTarget::LlcOnly);
                }
            }
            if self.l3.access(line) {
                self.l2.insert(line, t);
                (t + l2_lat + l3_lat, HitLevel::L3)
            } else {
                let issued_at = t + l2_lat + l3_lat;
                let info = self.dram.access_info(line, issued_at);
                if let Some(log) = &mut self.trace {
                    log.push(TraceEvent::DramAccess {
                        issued_at,
                        line,
                        complete_at: info.complete_at,
                        row_hit: info.row_hit,
                        bank: info.bank,
                        demand: train,
                    });
                }
                self.l3.insert(line, t);
                self.l2.insert(line, t);
                (info.complete_at, HitLevel::Memory)
            }
        };
        if install_l1d {
            self.l1d.insert(line, t);
        }
        if train && level > HitLevel::L1 {
            if let Some(pf) = self.pf_l2.as_mut() {
                let lines = pf.observe(line >> 12, line);
                self.issue_prefetches(&lines, t, PrefetchTarget::AllLevels);
            }
        }
        (done, level)
    }

    fn issue_prefetches(&mut self, lines: &[u64], now: u64, target: PrefetchTarget) {
        for &line in lines {
            match target {
                PrefetchTarget::LlcOnly => {
                    if self.l3.probe(line) {
                        continue;
                    }
                    let issued_at = now + self.config.l3.latency;
                    let info = self.dram.access_info(line, issued_at);
                    if let Some(log) = &mut self.trace {
                        log.push(TraceEvent::DramAccess {
                            issued_at,
                            line,
                            complete_at: info.complete_at,
                            row_hit: info.row_hit,
                            bank: info.bank,
                            demand: false,
                        });
                    }
                    self.l3.insert(line, now);
                    self.inflight_untracked.insert(line, info.complete_at);
                }
                PrefetchTarget::AllLevels => {
                    if self.l1d.probe(line) {
                        continue;
                    }
                    let (done, _) = self.fill_from_below(line, now, true, false);
                    self.inflight_untracked.insert(line, done);
                }
            }
            self.stats.prefetches_issued += 1;
        }
    }

    /// MSHR telemetry: (peak occupancy, allocations, merges).
    #[must_use]
    pub fn mshr_telemetry(&self) -> (usize, u64, u64) {
        (
            self.mshr.peak(),
            self.mshr.allocations(),
            self.mshr.merges(),
        )
    }

    /// Read-only MSHR conservation snapshot for the invariant sanitizer:
    /// `(allocations, released, resident, capacity, peak)`. Unlike
    /// [`MemoryHierarchy::outstanding_misses`] this never expires entries,
    /// so checking it cannot perturb simulated timing.
    #[must_use]
    pub fn mshr_sanity(&self) -> (u64, u64, usize, usize, usize) {
        (
            self.mshr.allocations(),
            self.mshr.released(),
            self.mshr.resident(),
            self.mshr.capacity(),
            self.mshr.peak(),
        )
    }

    /// Row-buffer statistics from the DRAM device.
    #[must_use]
    pub fn dram_stats(&self) -> crate::dram::DramStats {
        self.dram.stats()
    }

    /// Fault injection: corrupts the L1-D tag way at flat `slot` (see
    /// [`crate::cache::Cache::corrupt_way`]). Returns `false` when the
    /// way is vacant.
    pub fn corrupt_l1d_way(&mut self, slot: usize, bit: u64) -> bool {
        self.l1d.corrupt_way(slot, bit)
    }

    /// Fault injection: corrupts the `idx`-th in-flight MSHR (see
    /// [`crate::mshr::MshrFile::corrupt_nth`]). Returns `false` when the
    /// slot is vacant.
    pub fn corrupt_mshr(&mut self, idx: usize, bit: u64) -> bool {
        self.mshr.corrupt_nth(idx, bit)
    }
}

#[derive(Debug, Clone, Copy)]
enum PrefetchTarget {
    LlcOnly,
    AllLevels,
}

/// Maps the serving level of an L1 miss onto the trace vocabulary.
fn served_by(level: HitLevel) -> ServedBy {
    match level {
        // `fill_from_below` never reports L1; fold it into L2 defensively.
        HitLevel::L1 | HitLevel::L2 => ServedBy::L2,
        HitLevel::L3 => ServedBy::L3,
        HitLevel::Memory => ServedBy::Memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(MemConfig::baseline())
    }

    #[test]
    fn cold_load_misses_to_memory() {
        let mut m = mem();
        let out = m.access(AccessKind::Load, 0x4000, 0x100, 0).unwrap();
        assert_eq!(out.level, HitLevel::Memory);
        assert!(out.complete_at > 100);
        assert_eq!(m.stats().llc_misses, 1);
    }

    #[test]
    fn warm_load_hits_l1() {
        let mut m = mem();
        let cold = m.access(AccessKind::Load, 0x4000, 0x100, 0).unwrap();
        let warm = m
            .access(AccessKind::Load, 0x4000, 0x100, cold.complete_at)
            .unwrap();
        assert_eq!(warm.level, HitLevel::L1);
        assert_eq!(warm.complete_at, cold.complete_at + 4);
    }

    #[test]
    fn access_before_fill_merges() {
        let mut m = mem();
        let cold = m.access(AccessKind::Load, 0x4000, 0x100, 0).unwrap();
        // Second access to the same line 10 cycles later: data not back yet.
        let merged = m.access(AccessKind::Load, 0x4008, 0x104, 10).unwrap();
        assert!(merged.merged);
        assert_eq!(merged.complete_at, cold.complete_at.max(14));
    }

    #[test]
    fn mshr_exhaustion_stalls_loads() {
        let mut m = mem();
        let mut stalled = false;
        for i in 0..64 {
            match m.access(AccessKind::Load, 0x10_0000 + i * 0x1000, 0x100, 0) {
                Ok(_) => {}
                Err(MemStall::MshrFull) => {
                    stalled = true;
                    break;
                }
            }
        }
        assert!(stalled, "20 MSHRs must bound outstanding loads");
        assert_eq!(m.stats().mshr_stalls, 1);
    }

    #[test]
    fn stores_never_stall() {
        let mut m = mem();
        for i in 0..64 {
            m.access(AccessKind::Store, 0x20_0000 + i * 0x1000, 0x100, 0)
                .unwrap();
        }
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut m = mem();
        let cold = m.access(AccessKind::Ifetch, 0x400, 0x400, 0).unwrap();
        assert!(cold.complete_at > 2);
        let warm = m
            .access(AccessKind::Ifetch, 0x400, 0x400, cold.complete_at)
            .unwrap();
        assert_eq!(warm.level, HitLevel::L1);
        assert_eq!(warm.complete_at - cold.complete_at, 2);
        assert_eq!(m.stats().l1i_hits, 1);
        assert_eq!(m.stats().l1i_misses, 1);
    }

    #[test]
    fn l2_hit_latency_is_l1_plus_l2() {
        let mut m = mem();
        let cold = m.access(AccessKind::Load, 0x8000, 0x100, 0).unwrap();
        let t = cold.complete_at;
        // Evict from L1 by filling its set with conflicting lines: L1D is
        // 32KB/8-way/64B = 64 sets => stride 4096 conflicts in L1 while
        // mapping to (mostly) distinct L2 sets (512 sets), so the victim
        // stays resident in L2.
        for i in 1..=8 {
            m.access(AccessKind::Load, 0x8000 + i * 4096, 0x200, t + i * 1000)
                .unwrap();
        }
        let now = t + 100_000;
        let out = m.access(AccessKind::Load, 0x8000, 0x100, now).unwrap();
        assert_eq!(out.level, HitLevel::L2);
        assert_eq!(out.complete_at, now + 4 + 8);
    }

    #[test]
    fn llc_prefetcher_fills_l3() {
        let mut m = MemoryHierarchy::new(MemConfig::with_prefetch(PrefetchPlacement::L3));
        // Stream through lines 4KB apart (DRAM pages) to train the LLC
        // prefetcher (it observes line addresses).
        let mut t = 0;
        for i in 0..8u64 {
            let out = m
                .access(AccessKind::Load, 0x100_0000 + i * 64, 0x500, t)
                .unwrap();
            t = out.complete_at + 1;
        }
        assert!(
            m.stats().prefetches_issued > 0,
            "stream should train the LLC prefetcher"
        );
    }

    #[test]
    fn all_level_prefetcher_turns_misses_into_hits() {
        let mut m = MemoryHierarchy::new(MemConfig::with_prefetch(PrefetchPlacement::All));
        let mut t = 0;
        let mut last_level = HitLevel::Memory;
        for i in 0..32u64 {
            let out = m
                .access(AccessKind::Load, 0x200_0000 + i * 64, 0x600, t)
                .unwrap();
            t = out.complete_at + 200;
            last_level = out.level;
        }
        assert_eq!(last_level, HitLevel::L1, "trained stream should hit in L1");
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut m = mem();
        assert_eq!(m.probe_data(0x4000), None);
        let _ = m.access(AccessKind::Load, 0x4000, 0x100, 0).unwrap();
        assert_eq!(m.probe_data(0x4000), Some(HitLevel::L1));
        assert_eq!(m.stats().data_accesses(), 1, "probe did not count");
    }

    #[test]
    fn tracing_logs_misses_mshr_and_dram() {
        let mut m = mem();
        m.enable_tracing();
        let _ = m.access(AccessKind::Load, 0x4000, 0x100, 0).unwrap();
        let mut buf = Vec::new();
        m.drain_trace(&mut buf);
        for kind in ["cache-miss", "dram", "mshr-alloc"] {
            assert!(
                buf.iter().any(|e| e.kind() == kind),
                "no {kind} event in {buf:?}"
            );
        }
        let mut again = Vec::new();
        m.drain_trace(&mut again);
        assert!(again.is_empty(), "drain leaves the log empty");
    }

    #[test]
    fn tracing_off_logs_nothing() {
        let mut m = mem();
        let _ = m.access(AccessKind::Load, 0x4000, 0x100, 0).unwrap();
        assert!(!m.tracing());
        let mut buf = Vec::new();
        m.drain_trace(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn outstanding_misses_tracks_mlp() {
        let mut m = mem();
        let _ = m.access(AccessKind::Load, 0x30_0000, 0x100, 0).unwrap();
        let _ = m.access(AccessKind::Load, 0x40_0000, 0x104, 0).unwrap();
        assert_eq!(m.outstanding_misses(1), 2);
        assert_eq!(m.outstanding_misses(1_000_000), 0);
    }
}
