//! Memory-system configuration (Table II).

use crate::cache::CacheConfig;
use crate::dram::DramConfig;
use crate::prefetch::StridePrefetcherConfig;
use rar_verify::ConfigError;

/// Where the optional stride prefetcher is attached (Section V-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchPlacement {
    /// No hardware prefetching (the paper's baseline).
    #[default]
    None,
    /// Prefetch at the LLC only (`+L3` in Figure 11).
    L3,
    /// Prefetch at all three cache levels (`+ALL` in Figure 11).
    All,
}

/// Full memory-hierarchy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// L1 instruction cache (32 KB, 4-way, 2 cycles).
    pub l1i: CacheConfig,
    /// L1 data cache (32 KB, 8-way, 4 cycles).
    pub l1d: CacheConfig,
    /// Private L2 (256 KB, 8-way, 8 cycles).
    pub l2: CacheConfig,
    /// Shared L3 (1 MB, 16-way, 30 cycles).
    pub l3: CacheConfig,
    /// L1-D miss-status holding registers (20).
    pub mshrs: usize,
    /// DDR3 main-memory parameters.
    pub dram: DramConfig,
    /// Hardware-prefetcher placement.
    pub prefetch: PrefetchPlacement,
    /// Stride-prefetcher parameters (used when `prefetch != None`).
    pub prefetcher: StridePrefetcherConfig,
}

impl MemConfig {
    /// The paper's Table II baseline memory system (no prefetching).
    #[must_use]
    pub fn baseline() -> Self {
        MemConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 4,
                line_bytes: 64,
                latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 8,
            },
            l3: CacheConfig {
                size_bytes: 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
                latency: 30,
            },
            mshrs: 20,
            dram: DramConfig::ddr3_1600(),
            prefetch: PrefetchPlacement::None,
            prefetcher: StridePrefetcherConfig::aggressive(),
        }
    }

    /// Baseline with the aggressive prefetcher at the given placement.
    #[must_use]
    pub fn with_prefetch(placement: PrefetchPlacement) -> Self {
        MemConfig {
            prefetch: placement,
            ..MemConfig::baseline()
        }
    }

    /// Sanity checks on the configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] naming the first inconsistent
    /// Table II parameter (zero-sized or non-power-of-two cache geometry,
    /// mismatched line sizes, no MSHRs).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let caches = [
            ("l1i", &self.l1i),
            ("l1d", &self.l1d),
            ("l2", &self.l2),
            ("l3", &self.l3),
        ];
        for (name, c) in caches {
            if c.line_bytes == 0 || !c.line_bytes.is_power_of_two() {
                return Err(ConfigError::mem(
                    name,
                    format!("line size {} is not a nonzero power of two", c.line_bytes),
                ));
            }
            if c.assoc == 0 {
                return Err(ConfigError::mem(name, "associativity must be nonzero"));
            }
            if c.size_bytes == 0 || c.size_bytes % (c.assoc as u64 * c.line_bytes) != 0 {
                return Err(ConfigError::mem(
                    name,
                    format!(
                        "size {} B is not a whole number of {}-way sets of {}-byte lines",
                        c.size_bytes, c.assoc, c.line_bytes
                    ),
                ));
            }
        }
        if caches
            .iter()
            .any(|(_, c)| c.line_bytes != self.l1d.line_bytes)
        {
            return Err(ConfigError::mem(
                "line_bytes",
                "all cache levels must share one line size",
            ));
        }
        if self.mshrs == 0 {
            return Err(ConfigError::mem(
                "mshrs",
                "at least one MSHR is required to start a miss",
            ));
        }
        Ok(())
    }

    /// Appends this configuration's canonical key=value form to `out`:
    /// one line per field in declaration order, independent of how the
    /// value was constructed. Floats are rendered as IEEE-754 bit
    /// patterns so the form is exact. `SimConfig::fingerprint` in
    /// `rar-sim` hashes this text; extending the struct *must* extend
    /// this list (append-only).
    pub fn write_canonical(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (name, c) in [
            ("l1i", &self.l1i),
            ("l1d", &self.l1d),
            ("l2", &self.l2),
            ("l3", &self.l3),
        ] {
            let _ = write!(
                out,
                "mem.{name}.size_bytes={}\nmem.{name}.assoc={}\nmem.{name}.line_bytes={}\n\
                 mem.{name}.latency={}\n",
                c.size_bytes, c.assoc, c.line_bytes, c.latency,
            );
        }
        let d = &self.dram;
        let _ = write!(
            out,
            "mem.mshrs={}\nmem.dram.cpu_freq_ghz={:#018x}\nmem.dram.bus_freq_mhz={:#018x}\n\
             mem.dram.ranks={}\nmem.dram.banks_per_rank={}\nmem.dram.page_bytes={}\n\
             mem.dram.t_rp={}\nmem.dram.t_cl={}\nmem.dram.t_rcd={}\nmem.dram.burst={}\n\
             mem.dram.controller={}\n",
            self.mshrs,
            d.cpu_freq_ghz.to_bits(),
            d.bus_freq_mhz.to_bits(),
            d.ranks,
            d.banks_per_rank,
            d.page_bytes,
            d.t_rp,
            d.t_cl,
            d.t_rcd,
            d.burst,
            d.controller,
        );
        let placement = match self.prefetch {
            PrefetchPlacement::None => "none",
            PrefetchPlacement::L3 => "l3",
            PrefetchPlacement::All => "all",
        };
        let _ = write!(
            out,
            "mem.prefetch={placement}\nmem.prefetcher.streams={}\nmem.prefetcher.degree={}\n\
             mem.prefetcher.train_threshold={}\n",
            self.prefetcher.streams, self.prefetcher.degree, self.prefetcher.train_threshold,
        );
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let m = MemConfig::baseline();
        assert_eq!(m.l1i.size_bytes, 32 * 1024);
        assert_eq!(m.l1d.latency, 4);
        assert_eq!(m.l2.latency, 8);
        assert_eq!(m.l3.latency, 30);
        assert_eq!(m.mshrs, 20);
        assert_eq!(m.prefetch, PrefetchPlacement::None);
    }

    #[test]
    fn with_prefetch_sets_placement_only() {
        let m = MemConfig::with_prefetch(PrefetchPlacement::All);
        assert_eq!(m.prefetch, PrefetchPlacement::All);
        assert_eq!(m.l3, MemConfig::baseline().l3);
    }

    #[test]
    fn baseline_validates() {
        assert_eq!(MemConfig::baseline().validate(), Ok(()));
        for p in [PrefetchPlacement::L3, PrefetchPlacement::All] {
            assert_eq!(MemConfig::with_prefetch(p).validate(), Ok(()));
        }
    }

    #[test]
    fn validate_catches_bad_geometry() {
        let mut m = MemConfig::baseline();
        m.l1d.line_bytes = 48;
        assert_eq!(m.validate().unwrap_err().field(), "l1d");

        let mut m = MemConfig::baseline();
        m.l2.assoc = 0;
        assert_eq!(m.validate().unwrap_err().field(), "l2");

        let mut m = MemConfig::baseline();
        m.l3.size_bytes = 1000; // not a whole number of sets
        assert_eq!(m.validate().unwrap_err().field(), "l3");

        let mut m = MemConfig::baseline();
        m.l1i.line_bytes = 128; // mismatched with the data side
        assert!(m.validate().is_err());

        let mut m = MemConfig::baseline();
        m.mshrs = 0;
        assert_eq!(m.validate().unwrap_err().field(), "mshrs");
    }
}
