//! Memory-system configuration (Table II).

use crate::cache::CacheConfig;
use crate::dram::DramConfig;
use crate::prefetch::StridePrefetcherConfig;

/// Where the optional stride prefetcher is attached (Section V-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchPlacement {
    /// No hardware prefetching (the paper's baseline).
    #[default]
    None,
    /// Prefetch at the LLC only (`+L3` in Figure 11).
    L3,
    /// Prefetch at all three cache levels (`+ALL` in Figure 11).
    All,
}

/// Full memory-hierarchy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// L1 instruction cache (32 KB, 4-way, 2 cycles).
    pub l1i: CacheConfig,
    /// L1 data cache (32 KB, 8-way, 4 cycles).
    pub l1d: CacheConfig,
    /// Private L2 (256 KB, 8-way, 8 cycles).
    pub l2: CacheConfig,
    /// Shared L3 (1 MB, 16-way, 30 cycles).
    pub l3: CacheConfig,
    /// L1-D miss-status holding registers (20).
    pub mshrs: usize,
    /// DDR3 main-memory parameters.
    pub dram: DramConfig,
    /// Hardware-prefetcher placement.
    pub prefetch: PrefetchPlacement,
    /// Stride-prefetcher parameters (used when `prefetch != None`).
    pub prefetcher: StridePrefetcherConfig,
}

impl MemConfig {
    /// The paper's Table II baseline memory system (no prefetching).
    #[must_use]
    pub fn baseline() -> Self {
        MemConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 4,
                line_bytes: 64,
                latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 8,
            },
            l3: CacheConfig {
                size_bytes: 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
                latency: 30,
            },
            mshrs: 20,
            dram: DramConfig::ddr3_1600(),
            prefetch: PrefetchPlacement::None,
            prefetcher: StridePrefetcherConfig::aggressive(),
        }
    }

    /// Baseline with the aggressive prefetcher at the given placement.
    #[must_use]
    pub fn with_prefetch(placement: PrefetchPlacement) -> Self {
        MemConfig {
            prefetch: placement,
            ..MemConfig::baseline()
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let m = MemConfig::baseline();
        assert_eq!(m.l1i.size_bytes, 32 * 1024);
        assert_eq!(m.l1d.latency, 4);
        assert_eq!(m.l2.latency, 8);
        assert_eq!(m.l3.latency, 30);
        assert_eq!(m.mshrs, 20);
        assert_eq!(m.prefetch, PrefetchPlacement::None);
    }

    #[test]
    fn with_prefetch_sets_placement_only() {
        let m = MemConfig::with_prefetch(PrefetchPlacement::All);
        assert_eq!(m.prefetch, PrefetchPlacement::All);
        assert_eq!(m.l3, MemConfig::baseline().l3);
    }
}
