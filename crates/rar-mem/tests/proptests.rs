// Gated: needs the external `proptest` crate, which offline builds cannot
// resolve. Restore the dev-dependency and run with `--features proptests`.
#![cfg(feature = "proptests")]
//! Property tests for the memory hierarchy: cache residency, MSHR bounds,
//! DRAM timing sanity.

use proptest::prelude::*;
use rar_mem::{
    AccessKind, Cache, CacheConfig, Dram, DramConfig, MemConfig, MemoryHierarchy, MshrFile,
};

proptest! {
    /// A line just inserted is always resident; repeated accesses hit.
    #[test]
    fn inserted_lines_are_resident(addrs in prop::collection::vec(0u64..1u64 << 30, 1..128)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 16 * 1024, assoc: 4, line_bytes: 64, latency: 1 });
        for (i, &a) in addrs.iter().enumerate() {
            c.insert(a, i as u64);
            prop_assert!(c.probe(a), "just-inserted line must be resident");
            prop_assert!(c.access(a), "and must hit on access");
        }
    }

    /// Hits + misses always equals the number of demand accesses.
    #[test]
    fn cache_stat_conservation(ops in prop::collection::vec((0u64..1u64 << 20, any::<bool>()), 1..256)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 4 * 1024, assoc: 2, line_bytes: 64, latency: 1 });
        let mut demand = 0;
        for (i, &(a, insert)) in ops.iter().enumerate() {
            if insert {
                c.insert(a, i as u64);
            } else {
                let _ = c.access(a);
                demand += 1;
            }
        }
        prop_assert_eq!(c.hits() + c.misses(), demand);
    }

    /// The MSHR file never tracks more than its capacity.
    #[test]
    fn mshr_never_exceeds_capacity(
        cap in 1usize..24,
        reqs in prop::collection::vec((0u64..64, 1u64..300), 1..128),
    ) {
        let mut m = MshrFile::new(cap);
        let mut now = 0;
        for &(line, lat) in &reqs {
            now += 1;
            if m.lookup(line * 64, now).is_none() {
                let _ = m.allocate(line * 64, now + lat, now);
            }
            prop_assert!(m.outstanding(now) <= cap);
        }
        prop_assert!(m.peak() <= cap);
    }

    /// DRAM completions are strictly after the request and monotone for
    /// serialized same-bank requests.
    #[test]
    fn dram_completions_causal(addrs in prop::collection::vec(0u64..1u64 << 28, 1..64)) {
        let mut d = Dram::new(DramConfig::ddr3_1600());
        let mut now = 0;
        for &a in &addrs {
            let done = d.access(a & !63, now);
            prop_assert!(done > now, "completion after request");
            now = done;
        }
        let stats = d.stats();
        prop_assert_eq!(stats.row_hits + stats.row_misses, addrs.len() as u64);
    }

    /// End-to-end hierarchy: completion times are causal and levels are
    /// consistent with residency; a second access never takes longer than
    /// a first (same cycle base, data now closer).
    #[test]
    fn hierarchy_levels_improve_on_reuse(addrs in prop::collection::vec(0u64..1u64 << 26, 1..48)) {
        let mut m = MemoryHierarchy::new(MemConfig::baseline());
        let mut now = 0;
        for &a in &addrs {
            let first = m.access(AccessKind::Load, a, 0x400, now).unwrap();
            prop_assert!(first.complete_at > now);
            let again = m.access(AccessKind::Load, a, 0x400, first.complete_at).unwrap();
            prop_assert!(again.level <= first.level, "reuse can only move up the hierarchy");
            now = first.complete_at + 1;
        }
    }
}
