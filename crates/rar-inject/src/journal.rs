//! The campaign journal: one JSONL line per completed injection, fsynced
//! in batches, tolerant of a torn tail on resume.
//!
//! The journal is the campaign's crash-consistency mechanism. Every
//! classified injection appends one self-contained line recording the
//! sample index `k`, the planned site, and the outcome; a resumed campaign
//! replays completed lines into the tally and executes only the missing
//! `k`s. Because the `k`-th site is a pure function of `(seed, k)` (see
//! `rar_core::FaultInjector`), the journal never needs to checkpoint
//! generator state — the set of completed `k`s IS the checkpoint.
//!
//! Durability is batched: lines are buffered and pushed to disk with
//! `sync_data` every `fsync_every` records, bounding loss on a crash to
//! one batch. A process killed mid-append can leave a torn (partial) final
//! line; [`load_journal`] skips exactly that case, while corruption
//! anywhere else in the file is reported as an error rather than silently
//! dropped.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use rar_core::{FaultTarget, PlannedFault};

use crate::outcome::Outcome;

/// One completed injection, as journaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRecord {
    /// Sample index within the campaign.
    pub k: u64,
    /// The injected site.
    pub fault: PlannedFault,
    /// Classified outcome.
    pub outcome: Outcome,
}

impl JournalRecord {
    /// Renders the record as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "{{\"k\":{},\"cycle\":{},\"target\":\"{}\",\"entry\":{},\"bit\":{},\"outcome\":\"{}\"}}",
            self.k,
            self.fault.cycle,
            self.fault.target.name(),
            self.fault.entry,
            self.fault.bit,
            self.outcome.name()
        )
    }

    /// Parses one journal line; `None` on any malformation (the caller
    /// decides whether that is a tolerable torn tail or corruption).
    #[must_use]
    pub fn parse_line(line: &str) -> Option<JournalRecord> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        Some(JournalRecord {
            k: field(line, "k")?.parse().ok()?,
            fault: PlannedFault {
                cycle: field(line, "cycle")?.parse().ok()?,
                target: FaultTarget::parse(field(line, "target")?)?,
                entry: field(line, "entry")?.parse().ok()?,
                bit: field(line, "bit")?.parse().ok()?,
            },
            outcome: Outcome::parse(field(line, "outcome")?)?,
        })
    }
}

/// Extracts the raw value of `"key":` from a flat one-line JSON object,
/// with surrounding quotes stripped. Sufficient for the journal's own
/// fixed schema; not a general JSON parser.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Why a proposed journal path cannot be used — diagnosed *before* a
/// campaign starts, so a bad `--journal` argument is a clear typed error
/// up front rather than a panic (or a wasted campaign) later.
#[derive(Debug)]
pub enum JournalPathError {
    /// The path names an existing directory; the journal must be a file.
    IsDirectory(PathBuf),
    /// The path cannot be opened for appending (missing parent that
    /// cannot be created, a parent that is a file, permissions, ...).
    Unwritable {
        /// The rejected journal path.
        path: PathBuf,
        /// The underlying I/O failure.
        source: io::Error,
    },
}

impl fmt::Display for JournalPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalPathError::IsDirectory(path) => {
                write!(
                    f,
                    "journal path {} is a directory; pass a file path",
                    path.display()
                )
            }
            JournalPathError::Unwritable { path, source } => {
                write!(
                    f,
                    "journal path {} is not writable: {source}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for JournalPathError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalPathError::IsDirectory(_) => None,
            JournalPathError::Unwritable { source, .. } => Some(source),
        }
    }
}

/// Checks that `path` can actually serve as a journal, by probing it the
/// same way [`JournalWriter::open`] will (parents created, file opened
/// for append). On success an empty journal file exists at `path`, which
/// [`load_journal`] treats as a fresh start.
///
/// # Errors
///
/// [`JournalPathError::IsDirectory`] when `path` is an existing
/// directory; [`JournalPathError::Unwritable`] when the append-mode open
/// (or parent creation) fails.
pub fn validate_journal_path(path: &Path) -> Result<(), JournalPathError> {
    if path.is_dir() {
        return Err(JournalPathError::IsDirectory(path.to_path_buf()));
    }
    match JournalWriter::open(path, 1) {
        Ok(_) => Ok(()),
        Err(source) => Err(JournalPathError::Unwritable {
            path: path.to_path_buf(),
            source,
        }),
    }
}

/// Append-only journal writer with batched `sync_data`.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    buf: Vec<u8>,
    pending: usize,
    fsync_every: usize,
}

impl JournalWriter {
    /// Opens (creating or appending to) the journal at `path`.
    pub fn open(path: &Path, fsync_every: usize) -> io::Result<JournalWriter> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JournalWriter {
            file,
            buf: Vec::new(),
            pending: 0,
            fsync_every: fsync_every.max(1),
        })
    }

    /// Appends one record; returns `true` when this append flushed a batch
    /// to stable storage.
    pub fn append(&mut self, rec: &JournalRecord) -> io::Result<bool> {
        self.buf.extend_from_slice(rec.to_line().as_bytes());
        self.buf.push(b'\n');
        self.pending += 1;
        if self.pending >= self.fsync_every {
            self.sync()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Writes any buffered lines and pushes them to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        // Chaos fail-point: the flush fails before any bytes reach the
        // file, so the buffered records stay queued for the retry path.
        // (A retried append re-buffers its record; replay dedups by
        // sample index, so a duplicated line is benign by design.)
        rar_chaos::maybe_io_err(rar_chaos::sites::INJECT_JOURNAL_APPEND_ERR)?;
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        if self.pending > 0 {
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }
}

/// Loads every intact record from a journal file.
///
/// A missing file is an empty campaign (fresh start). A malformed *final*
/// line is a torn append from a crash and is skipped; a malformed line
/// anywhere else is corruption and returns `InvalidData` — resuming over
/// silently dropped completions would double-count on the next run.
pub fn load_journal(path: &Path) -> io::Result<Vec<JournalRecord>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match JournalRecord::parse_line(line) {
            Some(rec) => out.push(rec),
            None if i + 1 == lines.len() => break,
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt journal line {}: {line}", i + 1),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_journal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "rar-inject-journal-{tag}-{}-{}.jsonl",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn record(k: u64) -> JournalRecord {
        JournalRecord {
            k,
            fault: PlannedFault {
                cycle: 100 + k,
                target: FaultTarget::ALL[(k % 10) as usize],
                entry: k % 7,
                bit: k % 5,
            },
            outcome: match k % 4 {
                0 => Outcome::Masked,
                1 => Outcome::Sdc,
                2 => Outcome::DueHang,
                _ => Outcome::Vacant,
            },
        }
    }

    #[test]
    fn records_round_trip_through_lines() {
        for k in 0..40 {
            let r = record(k);
            assert_eq!(JournalRecord::parse_line(&r.to_line()), Some(r));
        }
    }

    #[test]
    fn write_then_load_recovers_everything() {
        let path = tmp_journal("roundtrip");
        let mut w = JournalWriter::open(&path, 4).expect("open");
        for k in 0..10 {
            w.append(&record(k)).expect("append");
        }
        w.sync().expect("sync");
        let got = load_journal(&path).expect("load");
        assert_eq!(got, (0..10).map(record).collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_skipped_on_resume() {
        let path = tmp_journal("torn");
        let mut text = String::new();
        for k in 0..5 {
            text.push_str(&record(k).to_line());
            text.push('\n');
        }
        // A crash mid-append leaves a partial line with no newline.
        text.push_str("{\"k\":5,\"cycle\":99,\"tar");
        std::fs::write(&path, text).expect("write");
        let got = load_journal(&path).expect("load");
        assert_eq!(got.len(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_before_the_tail_is_an_error() {
        let path = tmp_journal("corrupt");
        let text = format!(
            "{}\ngarbage\n{}\n",
            record(0).to_line(),
            record(1).to_line()
        );
        std::fs::write(&path, text).expect("write");
        let err = load_journal(&path).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_a_fresh_start() {
        let path = tmp_journal("missing");
        assert!(load_journal(&path).expect("load").is_empty());
    }

    #[test]
    fn directory_journal_paths_are_typed_errors() {
        let dir = std::env::temp_dir();
        match validate_journal_path(&dir) {
            Err(JournalPathError::IsDirectory(p)) => assert_eq!(p, dir),
            other => panic!("expected IsDirectory, got {other:?}"),
        }
        let msg = validate_journal_path(&dir).unwrap_err().to_string();
        assert!(msg.contains("is a directory"), "{msg}");
    }

    #[test]
    fn unwritable_journal_paths_are_typed_errors() {
        // A parent that is a regular *file* is unwritable for any user —
        // including root, which ignores permission bits (so a chmod-based
        // probe would be flaky across environments).
        let blocker = tmp_journal("blocker");
        std::fs::write(&blocker, b"not a directory").expect("write");
        let path = blocker.join("campaign.jsonl");
        match validate_journal_path(&path) {
            Err(JournalPathError::Unwritable { path: p, source }) => {
                assert_eq!(p, path);
                let msg = format!("{}", JournalPathError::Unwritable { path: p, source });
                assert!(msg.contains("not writable"), "{msg}");
            }
            other => panic!("expected Unwritable, got {other:?}"),
        }
        std::fs::remove_file(&blocker).ok();
    }

    #[test]
    fn valid_journal_paths_probe_clean_and_stay_resumable() {
        let path = tmp_journal("valid");
        validate_journal_path(&path).expect("fresh temp path is writable");
        // The probe leaves an empty journal: still a fresh start.
        assert!(load_journal(&path).expect("load").is_empty());
        // Validation of an existing journal does not disturb its records.
        let mut w = JournalWriter::open(&path, 1).expect("open");
        w.append(&record(3)).expect("append");
        w.sync().expect("sync");
        validate_journal_path(&path).expect("existing journal is writable");
        assert_eq!(load_journal(&path).expect("load"), vec![record(3)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_batches_report_flush_boundaries() {
        let path = tmp_journal("batch");
        let mut w = JournalWriter::open(&path, 3).expect("open");
        let flushed: Vec<bool> = (0..7)
            .map(|k| w.append(&record(k)).expect("append"))
            .collect();
        assert_eq!(flushed, [false, false, true, false, false, true, false]);
        w.sync().expect("sync");
        assert_eq!(load_journal(&path).expect("load").len(), 7);
        std::fs::remove_file(&path).ok();
    }
}
