//! The crash-tolerant, resumable campaign runner.
//!
//! A campaign executes `samples` independent injections, each planned by a
//! deterministic [`FaultInjector`] and classified by a caller-supplied
//! executor. The runner is built to survive the failure modes of long
//! unattended campaigns:
//!
//! - **Panics** inside the executor are caught per injection
//!   (`catch_unwind`) and classified [`Outcome::DuePanic`] — an invariant
//!   tripping under fault injection is itself a detected error, not a
//!   campaign abort.
//! - **Transient executor failures** (e.g. disk-cache I/O under the
//!   simulator) are retried with capped exponential backoff; runs that
//!   stay broken are excluded and reported, degrading the campaign's
//!   confidence intervals gracefully instead of killing it.
//! - **Process death** is covered by the JSONL journal: completed
//!   injections are appended (fsynced in batches), and a rerun with the
//!   same journal replays them and executes only the missing sample
//!   indices. Tallies are order-independent sums, so an interrupted-then-
//!   resumed campaign produces byte-identical tallies to an uninterrupted
//!   one.
//! - **Journal I/O failures** are retried like the executor's; if a write
//!   stays broken the journal is dropped and the campaign continues
//!   in-memory (resume from that point is impossible, which the telemetry
//!   counter `rar_inject_journal_errors_total` records).
//!
//! Work is distributed over `threads` workers by an atomic next-`k`
//! counter. Because site planning is pure in `k` and tallies commute, the
//! thread count affects wall-clock time only — never the result.

use std::collections::HashSet;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rar_chaos::{retry_with_backoff, RetryPolicy};
use rar_core::{FaultInjector, PlannedFault};
use rar_telemetry::{names, CancelToken, Counter, FlightRecorder, MetricsRegistry};

use crate::journal::{load_journal, JournalRecord, JournalWriter};
use crate::outcome::{Outcome, Tally};

/// Campaign shape and robustness knobs.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Total sample indices `0..samples` the campaign covers.
    pub samples: u64,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// JSONL journal path; `None` disables crash tolerance and resume.
    pub journal: Option<PathBuf>,
    /// Journal records per fsync batch.
    pub fsync_every: usize,
    /// Attempts per transiently-failing operation (executor run or
    /// journal append) before giving up on it.
    pub max_attempts: u32,
    /// Stop after this many *new* injections (journal replays excluded).
    /// Used to simulate a mid-campaign kill in tests; `None` runs to
    /// completion.
    pub limit: Option<u64>,
    /// Cooperative cancellation: workers poll the token before claiming
    /// each sample index, so a canceled campaign finishes (and journals)
    /// the injections in flight and claims nothing more. Resuming from
    /// the same journal later continues exactly where cancellation
    /// stopped. `None` means the campaign can only be stopped by a kill.
    pub cancel: Option<CancelToken>,
    /// Flight recorder for post-mortem context: every DUE outcome
    /// (hang or panic) is noted with its sample index and target so a
    /// later dump shows what led up to the detected error. `None`
    /// records nothing.
    pub flight: Option<Arc<FlightRecorder>>,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            samples: 1000,
            threads: 1,
            journal: None,
            fsync_every: 64,
            max_attempts: 3,
            limit: None,
            cancel: None,
            flight: None,
        }
    }
}

/// What a campaign produced, including how complete it is.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Per-target outcome counts (replayed + freshly executed).
    pub tally: Tally,
    /// Sample indices the campaign was asked to cover.
    pub samples: u64,
    /// Injections classified (replayed + fresh).
    pub completed: u64,
    /// Injections replayed from the journal rather than executed.
    pub resumed: u64,
    /// Injections abandoned after exhausting transient-failure retries.
    pub failed: u64,
}

impl CampaignResult {
    /// Fraction of the requested samples that produced a classification.
    /// Confidence intervals in the report are computed from completed
    /// counts, so a partially-failed campaign degrades to wider intervals
    /// rather than wrong ones.
    #[must_use]
    pub fn completed_fraction(&self) -> f64 {
        if self.samples == 0 {
            return 1.0;
        }
        self.completed as f64 / self.samples as f64
    }
}

/// Telemetry handles for one campaign. Registered eagerly so every
/// `names::INJECT_ALL` metric exists (at zero) from the first snapshot.
struct Counters {
    runs: Counter,
    masked: Counter,
    sdc: Counter,
    due: Counter,
    resumed: Counter,
    retries: Counter,
    flushes: Counter,
    errors: Counter,
}

impl Counters {
    fn new(registry: Option<&MetricsRegistry>) -> Counters {
        match registry {
            Some(reg) => Counters {
                runs: reg.counter(names::INJECT_RUNS),
                masked: reg.counter(names::INJECT_MASKED),
                sdc: reg.counter(names::INJECT_SDC),
                due: reg.counter(names::INJECT_DUE),
                resumed: reg.counter(names::INJECT_RESUMED),
                retries: reg.counter(names::INJECT_RETRIES),
                flushes: reg.counter(names::INJECT_JOURNAL_FLUSHES),
                errors: reg.counter(names::INJECT_JOURNAL_ERRORS),
            },
            None => Counters {
                runs: Counter::default(),
                masked: Counter::default(),
                sdc: Counter::default(),
                due: Counter::default(),
                resumed: Counter::default(),
                retries: Counter::default(),
                flushes: Counter::default(),
                errors: Counter::default(),
            },
        }
    }

    fn record(&self, outcome: Outcome) {
        self.runs.inc();
        match outcome {
            Outcome::Vacant | Outcome::Masked => self.masked.inc(),
            Outcome::Sdc => self.sdc.inc(),
            Outcome::DueHang | Outcome::DuePanic => self.due.inc(),
        }
    }
}

/// Retry shape shared by the journal and executor paths: up to
/// `max_attempts` tries with jittered 1–64 ms sleeps (the magnitude of
/// the old capped-exponential loop, now expressed over the workspace's
/// one [`retry_with_backoff`] helper).
fn retry_policy(spec: &CampaignSpec) -> RetryPolicy {
    RetryPolicy::new(spec.max_attempts.max(1), 1, 64)
}

/// Appends with retry; on persistent failure drops the journal (the
/// campaign continues without crash tolerance) and counts the error.
fn journal_append(
    slot: &Mutex<Option<JournalWriter>>,
    rec: &JournalRecord,
    spec: &CampaignSpec,
    counters: &Counters,
) {
    // Jitter seed: sleeps never influence outcomes, they only need to be
    // reproducible for chaos-run replay.
    const JOURNAL_RETRY_SEED: u64 = 0x1a77_ba5e;
    let mut guard = slot.lock().expect("journal lock");
    let Some(writer) = guard.as_mut() else {
        return;
    };
    let appended = retry_with_backoff(
        retry_policy(spec),
        JOURNAL_RETRY_SEED,
        Some(&counters.retries),
        |_| writer.append(rec),
    );
    match appended {
        Ok(synced) => {
            if synced {
                counters.flushes.inc();
            }
        }
        Err(_) => {
            counters.errors.inc();
            *guard = None;
        }
    }
}

/// Runs (or resumes) a campaign.
///
/// The executor receives the sample index and its planned fault and
/// returns the classified outcome, or `Err` for a *transient* failure
/// worth retrying. It must be deterministic in `k` for resume and
/// thread-count independence to hold — the simulator harness satisfies
/// this by construction (seeded workloads, pure site planning).
///
/// # Errors
///
/// Only journal *loading* errors (unreadable or corrupt-before-the-tail
/// journal) abort the campaign; everything at execution time degrades
/// gracefully as described in the module docs.
pub fn run_campaign<I, F>(
    spec: &CampaignSpec,
    injector: &I,
    execute: F,
    registry: Option<&MetricsRegistry>,
) -> io::Result<CampaignResult>
where
    I: FaultInjector + Sync,
    F: Fn(u64, &PlannedFault) -> Result<Outcome, String> + Sync,
{
    let counters = Counters::new(registry);

    // Resume: replay completed sample indices from the journal.
    let mut tally = Tally::new();
    let mut done: HashSet<u64> = HashSet::new();
    if let Some(path) = &spec.journal {
        for rec in load_journal(path)? {
            if rec.k < spec.samples && done.insert(rec.k) {
                tally.record(rec.fault.target, rec.outcome);
            }
        }
    }
    let resumed = done.len() as u64;
    counters.resumed.add(resumed);
    counters.runs.add(resumed);

    let writer = match &spec.journal {
        Some(path) => Some(JournalWriter::open(path, spec.fsync_every)?),
        None => None,
    };
    let writer = Mutex::new(writer);

    let next_k = AtomicU64::new(0);
    let fresh_budget = AtomicU64::new(spec.limit.unwrap_or(u64::MAX));
    let shared_tally = Mutex::new(tally);
    let failed = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..spec.threads.max(1) {
            scope.spawn(|| loop {
                // Cancellation point: checked before claiming a sample,
                // so the injection in flight always finishes and lands in
                // the journal — resume picks up exactly here.
                if spec.cancel.as_ref().is_some_and(CancelToken::is_canceled) {
                    break;
                }
                let k = next_k.fetch_add(1, Ordering::Relaxed);
                if k >= spec.samples {
                    break;
                }
                if done.contains(&k) {
                    continue;
                }
                // Claim one unit of the fresh-injection budget (the
                // mid-campaign-kill simulation for resume tests).
                if fresh_budget
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                    .is_err()
                {
                    break;
                }
                let fault = injector.plan(k);
                // Transient executor failures retry under the shared
                // helper; panics are terminal (classified DuePanic), so
                // they map to an immediate Ok inside the retried closure.
                let ran: Result<Outcome, ()> =
                    retry_with_backoff(retry_policy(spec), k, Some(&counters.retries), |_| {
                        match catch_unwind(AssertUnwindSafe(|| execute(k, &fault))) {
                            Ok(Ok(o)) => Ok(o),
                            Err(_) => Ok(Outcome::DuePanic),
                            Ok(Err(_transient)) => Err(()),
                        }
                    });
                let Ok(outcome) = ran else {
                    failed.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                if matches!(outcome, Outcome::DueHang | Outcome::DuePanic) {
                    if let Some(flight) = &spec.flight {
                        flight.note(
                            "inject_due",
                            &format!(
                                "k={k} target={} outcome={}",
                                fault.target.name(),
                                outcome.name()
                            ),
                        );
                    }
                }
                counters.record(outcome);
                shared_tally
                    .lock()
                    .expect("tally lock")
                    .record(fault.target, outcome);
                journal_append(
                    &writer,
                    &JournalRecord { k, fault, outcome },
                    spec,
                    &counters,
                );
            });
        }
    });

    // Final durability point: flush the partial batch.
    if let Some(w) = writer.lock().expect("journal lock").as_mut() {
        if w.sync().is_ok() {
            counters.flushes.inc();
        } else {
            counters.errors.inc();
        }
    }

    let tally = shared_tally.into_inner().expect("tally lock");
    let completed = tally.total();
    Ok(CampaignResult {
        tally,
        samples: spec.samples,
        completed,
        resumed,
        failed: failed.into_inner(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rar_core::FaultTarget;
    use std::path::PathBuf;

    /// A pure mock injector: site fields are simple functions of `k`.
    struct MockInjector;

    impl FaultInjector for MockInjector {
        fn plan(&self, k: u64) -> PlannedFault {
            PlannedFault {
                cycle: 100 + k,
                target: FaultTarget::ALL[(k % 10) as usize],
                entry: k % 7,
                bit: k % 5,
            }
        }
    }

    /// Deterministic-by-`k` outcome classification.
    fn classify(k: u64) -> Outcome {
        match k % 5 {
            0 => Outcome::Vacant,
            1 | 2 => Outcome::Masked,
            3 => Outcome::Sdc,
            _ => Outcome::DueHang,
        }
    }

    fn tmp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "rar-inject-campaign-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn tallies_are_identical_across_thread_counts() {
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            let spec = CampaignSpec {
                samples: 500,
                threads,
                ..CampaignSpec::default()
            };
            let r = run_campaign(&spec, &MockInjector, |k, _f| Ok(classify(k)), None)
                .expect("campaign");
            assert_eq!(r.completed, 500);
            assert_eq!(r.failed, 0);
            results.push(r.tally);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn kill_then_resume_matches_uninterrupted() {
        let path = tmp_journal("resume");
        std::fs::remove_file(&path).ok();

        let uninterrupted = run_campaign(
            &CampaignSpec {
                samples: 200,
                threads: 4,
                ..CampaignSpec::default()
            },
            &MockInjector,
            |k, _f| Ok(classify(k)),
            None,
        )
        .expect("campaign");

        // Phase 1: "killed" after 80 fresh injections. fsync_every=1 makes
        // every completion durable, like a crash right after a batch sync.
        let phase1 = run_campaign(
            &CampaignSpec {
                samples: 200,
                threads: 4,
                journal: Some(path.clone()),
                fsync_every: 1,
                limit: Some(80),
                ..CampaignSpec::default()
            },
            &MockInjector,
            |k, _f| Ok(classify(k)),
            None,
        )
        .expect("phase1");
        assert_eq!(phase1.completed, 80);

        // Phase 2: resume with the same journal, run to completion.
        let reg = MetricsRegistry::new();
        let phase2 = run_campaign(
            &CampaignSpec {
                samples: 200,
                threads: 4,
                journal: Some(path.clone()),
                fsync_every: 16,
                ..CampaignSpec::default()
            },
            &MockInjector,
            |k, _f| Ok(classify(k)),
            Some(&reg),
        )
        .expect("phase2");

        assert_eq!(phase2.resumed, 80);
        assert_eq!(phase2.completed, 200);
        assert_eq!(phase2.tally, uninterrupted.tally);
        assert_eq!(reg.counter(names::INJECT_RESUMED).get(), 80);
        // Resumed + fresh all counted as runs.
        assert_eq!(reg.counter(names::INJECT_RUNS).get(), 200);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panics_become_due_panic_not_campaign_aborts() {
        let spec = CampaignSpec {
            samples: 50,
            threads: 2,
            ..CampaignSpec::default()
        };
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let r = run_campaign(
            &spec,
            &MockInjector,
            |k, _f| {
                assert!(k % 10 != 7, "injected invariant violation");
                Ok(Outcome::Masked)
            },
            None,
        )
        .expect("campaign");
        std::panic::set_hook(hook);
        assert_eq!(r.completed, 50);
        let panics: u64 = FaultTarget::ALL
            .into_iter()
            .map(|t| r.tally.get(t).due_panic)
            .sum();
        assert_eq!(panics, 5); // k = 7, 17, 27, 37, 47
    }

    #[test]
    fn flight_recorder_captures_due_outcomes() {
        let flight = Arc::new(FlightRecorder::new(64));
        let spec = CampaignSpec {
            samples: 20,
            threads: 1,
            flight: Some(Arc::clone(&flight)),
            ..CampaignSpec::default()
        };
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let r = run_campaign(
            &spec,
            &MockInjector,
            |k, _f| {
                assert!(k != 7, "injected invariant violation");
                Ok(if k == 3 {
                    Outcome::DueHang
                } else {
                    Outcome::Masked
                })
            },
            None,
        )
        .expect("campaign");
        std::panic::set_hook(hook);
        assert_eq!(r.completed, 20);
        let events = flight.snapshot();
        assert_eq!(events.len(), 2); // k=3 hang + k=7 panic
        assert!(events.iter().all(|e| e.kind == "inject_due"));
        assert!(events.iter().any(|e| e.detail.contains("outcome=due_hang")));
        assert!(events
            .iter()
            .any(|e| e.detail.contains("k=7") && e.detail.contains("outcome=due_panic")));
        let dump = flight.dump_json("inject_due");
        assert!(dump.contains("\"rar-flight-v1\""));
    }

    #[test]
    fn persistent_transient_failures_degrade_gracefully() {
        let reg = MetricsRegistry::new();
        let spec = CampaignSpec {
            samples: 40,
            threads: 1,
            max_attempts: 2,
            ..CampaignSpec::default()
        };
        let r = run_campaign(
            &spec,
            &MockInjector,
            |k, _f| {
                if k % 8 == 3 {
                    Err("simulated transient I/O failure".to_owned())
                } else {
                    Ok(classify(k))
                }
            },
            Some(&reg),
        )
        .expect("campaign");
        assert_eq!(r.failed, 5); // k = 3, 11, 19, 27, 35
        assert_eq!(r.completed, 35);
        assert!(r.completed_fraction() < 1.0);
        assert_eq!(reg.counter(names::INJECT_RETRIES).get(), 10); // 2 attempts each
    }

    #[test]
    fn cancel_then_resume_matches_uninterrupted() {
        let path = tmp_journal("cancel");
        std::fs::remove_file(&path).ok();

        let uninterrupted = run_campaign(
            &CampaignSpec {
                samples: 200,
                threads: 4,
                ..CampaignSpec::default()
            },
            &MockInjector,
            |k, _f| Ok(classify(k)),
            None,
        )
        .expect("campaign");

        // Phase 1: cancel mid-campaign once some injections have run.
        // Workers stop claiming, but everything claimed lands journaled.
        let reg = MetricsRegistry::new();
        let token = CancelToken::new();
        let runs = reg.counter(names::INJECT_RUNS);
        let phase1 = std::thread::scope(|s| {
            s.spawn(|| {
                while runs.get() < 10 {
                    std::thread::yield_now();
                }
                token.cancel();
            });
            run_campaign(
                &CampaignSpec {
                    samples: 200,
                    threads: 4,
                    journal: Some(path.clone()),
                    fsync_every: 1,
                    cancel: Some(token.clone()),
                    ..CampaignSpec::default()
                },
                &MockInjector,
                |k, _f| {
                    // Slow the executor so the cancel lands mid-campaign
                    // instead of after a microsecond blast through 200
                    // instant injections.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    Ok(classify(k))
                },
                Some(&reg),
            )
        })
        .expect("phase1");
        assert!(phase1.completed >= 10, "cancel fired after 10 runs");
        assert!(
            phase1.completed < 200,
            "cancellation actually cut the campaign short"
        );

        // Phase 2: resume with the same journal and no token; the result
        // is identical to a never-canceled campaign.
        let phase2 = run_campaign(
            &CampaignSpec {
                samples: 200,
                threads: 4,
                journal: Some(path.clone()),
                ..CampaignSpec::default()
            },
            &MockInjector,
            |k, _f| Ok(classify(k)),
            None,
        )
        .expect("phase2");
        assert_eq!(phase2.resumed, phase1.completed);
        assert_eq!(phase2.completed, 200);
        assert_eq!(phase2.tally, uninterrupted.tally);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pre_canceled_campaign_claims_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let r = run_campaign(
            &CampaignSpec {
                samples: 100,
                threads: 2,
                cancel: Some(token),
                ..CampaignSpec::default()
            },
            &MockInjector,
            |k, _f| Ok(classify(k)),
            None,
        )
        .expect("campaign");
        assert_eq!(r.completed, 0);
        assert_eq!(r.failed, 0);
    }

    #[test]
    fn every_campaign_metric_is_registered() {
        let reg = MetricsRegistry::new();
        let spec = CampaignSpec {
            samples: 10,
            ..CampaignSpec::default()
        };
        run_campaign(&spec, &MockInjector, |k, _f| Ok(classify(k)), Some(&reg)).expect("campaign");
        let snapshot = reg.snapshot();
        for name in names::INJECT_ALL {
            assert!(
                snapshot.iter().any(|(n, _)| n == name),
                "{name} not registered"
            );
        }
    }
}
