//! Outcome taxonomy and per-structure tallies with confidence intervals.
//!
//! Every injection is classified against a golden (fault-free) run of the
//! same workload into the standard three-way taxonomy — masked, silent
//! data corruption, detected/unrecoverable — plus an explicit *vacant*
//! bucket for strikes that addressed an unoccupied slot. Vacant strikes
//! are masked by construction, but keeping them separate preserves the
//! occupancy information that makes measured vulnerability directly
//! comparable to ACE-estimated AVF: both divide by the structure's full
//! bit capacity, not by its occupied fraction.

use rar_core::FaultTarget;

/// Architectural outcome of one injection, classified against the golden
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The strike addressed an unoccupied slot; masked by construction.
    Vacant,
    /// The run completed with a commit digest identical to the golden run.
    Masked,
    /// The run completed but its commit digest diverged from golden:
    /// silent data corruption.
    Sdc,
    /// The run exhausted its cycle budget or wall-clock deadline — a
    /// hang/deadlock the watchdog detected (DUE).
    DueHang,
    /// The run panicked (an internal invariant tripped) — detected and
    /// unrecoverable (DUE).
    DuePanic,
}

impl Outcome {
    /// Stable lower-case name (used in journals and tally files).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Outcome::Vacant => "vacant",
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::DueHang => "due_hang",
            Outcome::DuePanic => "due_panic",
        }
    }

    /// Parses a [`Outcome::name`] back into the outcome.
    #[must_use]
    pub fn parse(s: &str) -> Option<Outcome> {
        [
            Outcome::Vacant,
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::DueHang,
            Outcome::DuePanic,
        ]
        .into_iter()
        .find(|o| o.name() == s)
    }

    /// Whether the fault was architecturally visible (SDC or DUE).
    #[must_use]
    pub const fn is_unmasked(self) -> bool {
        matches!(self, Outcome::Sdc | Outcome::DueHang | Outcome::DuePanic)
    }
}

/// Integer outcome counts for one injection target.
///
/// All fields are exact counts so rendered tallies are byte-stable across
/// platforms and thread counts; the derived rates and intervals are
/// computed on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TargetTally {
    /// Strikes into unoccupied slots.
    pub vacant: u64,
    /// Completed runs with a golden-identical digest.
    pub masked: u64,
    /// Completed runs with a divergent digest.
    pub sdc: u64,
    /// Watchdog-detected hangs.
    pub due_hang: u64,
    /// Panicked runs.
    pub due_panic: u64,
}

impl TargetTally {
    /// Total injections attempted at this target.
    #[must_use]
    pub fn attempts(self) -> u64 {
        self.vacant + self.masked + self.sdc + self.due_hang + self.due_panic
    }

    /// Architecturally visible outcomes (SDC + DUE).
    #[must_use]
    pub fn unmasked(self) -> u64 {
        self.sdc + self.due_hang + self.due_panic
    }

    /// Measured vulnerability: `unmasked / attempts`, with vacant strikes
    /// in the denominator — the occupancy weighting that makes this the
    /// statistical estimator of AVF.
    #[must_use]
    pub fn vulnerability(self) -> f64 {
        let n = self.attempts();
        if n == 0 {
            return 0.0;
        }
        self.unmasked() as f64 / n as f64
    }

    /// Half-width of the 95% normal-approximation confidence interval on
    /// [`TargetTally::vulnerability`]: `1.96 * sqrt(p(1-p)/n)`.
    #[must_use]
    pub fn ci95(self) -> f64 {
        let n = self.attempts();
        if n == 0 {
            return 0.0;
        }
        let p = self.vulnerability();
        1.96 * (p * (1.0 - p) / n as f64).sqrt()
    }

    pub(crate) fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Vacant => self.vacant += 1,
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::DueHang => self.due_hang += 1,
            Outcome::DuePanic => self.due_panic += 1,
        }
    }
}

/// Outcome counts for every injection target of a campaign.
///
/// Tallies are sums of per-injection counts, so they are independent of
/// completion order — identical across thread counts and across
/// interrupted-then-resumed runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tally {
    per_target: [TargetTally; FaultTarget::ALL.len()],
}

fn target_index(target: FaultTarget) -> usize {
    FaultTarget::ALL
        .iter()
        .position(|&t| t == target)
        .expect("FaultTarget::ALL covers every variant")
}

impl Tally {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        Tally::default()
    }

    /// Records one classified injection.
    pub fn record(&mut self, target: FaultTarget, outcome: Outcome) {
        self.per_target[target_index(target)].record(outcome);
    }

    /// Counts for one target.
    #[must_use]
    pub fn get(&self, target: FaultTarget) -> TargetTally {
        self.per_target[target_index(target)]
    }

    /// Every target with at least one attempt, in [`FaultTarget::ALL`]
    /// order.
    pub fn targets(&self) -> impl Iterator<Item = (FaultTarget, TargetTally)> + '_ {
        FaultTarget::ALL
            .into_iter()
            .map(|t| (t, self.get(t)))
            .filter(|&(_, c)| c.attempts() > 0)
    }

    /// Total injections across all targets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_target.iter().map(|c| c.attempts()).sum()
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        for (mine, theirs) in self.per_target.iter_mut().zip(&other.per_target) {
            mine.vacant += theirs.vacant;
            mine.masked += theirs.masked;
            mine.sdc += theirs.sdc;
            mine.due_hang += theirs.due_hang;
            mine.due_panic += theirs.due_panic;
        }
    }

    /// Renders the tally as a JSON object keyed by target name, counts
    /// only — integers render identically on every platform, so the output
    /// is byte-for-byte reproducible (the CI smoke job diffs it against a
    /// committed golden file).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (target, c) in self.targets() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"vacant\":{},\"masked\":{},\"sdc\":{},\"due_hang\":{},\"due_panic\":{}}}",
                target.name(),
                c.vacant,
                c.masked,
                c.sdc,
                c.due_hang,
                c.due_panic
            ));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_names_round_trip() {
        for o in [
            Outcome::Vacant,
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::DueHang,
            Outcome::DuePanic,
        ] {
            assert_eq!(Outcome::parse(o.name()), Some(o));
        }
        assert_eq!(Outcome::parse("bogus"), None);
    }

    #[test]
    fn vulnerability_counts_vacant_in_the_denominator() {
        let mut t = Tally::new();
        for _ in 0..50 {
            t.record(FaultTarget::Rob, Outcome::Vacant);
        }
        for _ in 0..30 {
            t.record(FaultTarget::Rob, Outcome::Masked);
        }
        for _ in 0..15 {
            t.record(FaultTarget::Rob, Outcome::Sdc);
        }
        for _ in 0..5 {
            t.record(FaultTarget::Rob, Outcome::DueHang);
        }
        let c = t.get(FaultTarget::Rob);
        assert_eq!(c.attempts(), 100);
        assert_eq!(c.unmasked(), 20);
        assert!((c.vulnerability() - 0.20).abs() < 1e-12);
        // 1.96 * sqrt(0.2*0.8/100) = 0.0784
        assert!((c.ci95() - 0.0784).abs() < 1e-4);
    }

    #[test]
    fn tally_merge_is_order_independent() {
        let mut a = Tally::new();
        a.record(FaultTarget::Iq, Outcome::Sdc);
        a.record(FaultTarget::Fu, Outcome::Masked);
        let mut b = Tally::new();
        b.record(FaultTarget::Iq, Outcome::DuePanic);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 3);
    }

    #[test]
    fn json_rendering_is_stable_and_integer_only() {
        let mut t = Tally::new();
        t.record(FaultTarget::Sq, Outcome::Masked);
        t.record(FaultTarget::Rob, Outcome::Sdc);
        let json = t.to_json();
        // FaultTarget::ALL order: rob before sq, regardless of insert order.
        assert_eq!(
            json,
            "{\"rob\":{\"vacant\":0,\"masked\":0,\"sdc\":1,\"due_hang\":0,\"due_panic\":0},\
             \"sq\":{\"vacant\":0,\"masked\":1,\"sdc\":0,\"due_hang\":0,\"due_panic\":0}}"
        );
        assert!(!json.contains('.'), "floats are not byte-stable: {json}");
    }
}
