//! Stratified validation of the static bit-liveness analysis.
//!
//! The bit-level ACE refinement (`rar-verify`'s backward mask dataflow)
//! claims that specific register *bits* are dead: flipping them can never
//! change an architecturally observable value. Fault injection is how the
//! claim is audited. A validation campaign restricts strikes to the
//! register files (where the per-bit dead masks apply and the simulator
//! resolves each strike's prediction at landing time) and stratifies every
//! outcome by what the static analysis said about the struck bit:
//!
//! - **predicted-dead** — the analysis proved the bit dead at strike time;
//!   its measured vulnerability must be statistically consistent with
//!   zero, or the analysis is unsound.
//! - **predicted-live** — the analysis kept the bit live (it never claims
//!   liveness, only fails to prove death), so any outcome is consistent.
//! - **unknown** — the strike carried no prediction: the slot was vacant,
//!   written by wrong-path work the analysis does not model, or outside
//!   the analysis window.
//!
//! The gate ([`StratifiedTally::dead_stratum_consistent_with_zero`]) uses
//! the same 95% normal-approximation interval as the cross-validation
//! table: the predicted-dead stratum passes iff zero lies inside the
//! interval around its measured vulnerability.

use crate::outcome::{Outcome, TargetTally};

/// What the static bit-liveness analysis predicted about a struck bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stratum {
    /// The backward dataflow proved the struck bit dead.
    PredictedDead,
    /// The struck bit was not proven dead (conservatively live).
    PredictedLive,
    /// No prediction: vacant slot, wrong-path writer, or a strike outside
    /// the analysis window.
    Unknown,
}

impl Stratum {
    /// Every stratum, in rendering order.
    pub const ALL: [Stratum; 3] = [
        Stratum::PredictedDead,
        Stratum::PredictedLive,
        Stratum::Unknown,
    ];

    /// Stable lower-case name (used in validation reports and goldens).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Stratum::PredictedDead => "predicted_dead",
            Stratum::PredictedLive => "predicted_live",
            Stratum::Unknown => "unknown",
        }
    }

    /// Maps the simulator's per-strike prediction (`FaultReport::
    /// predicted_dead`) onto a stratum.
    #[must_use]
    pub const fn from_prediction(predicted_dead: Option<bool>) -> Stratum {
        match predicted_dead {
            Some(true) => Stratum::PredictedDead,
            Some(false) => Stratum::PredictedLive,
            None => Stratum::Unknown,
        }
    }
}

fn stratum_index(s: Stratum) -> usize {
    match s {
        Stratum::PredictedDead => 0,
        Stratum::PredictedLive => 1,
        Stratum::Unknown => 2,
    }
}

/// Outcome counts per prediction stratum. Pure integer sums, so tallies
/// are order-independent and byte-stable across thread counts — the same
/// property the per-target [`crate::Tally`] has.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StratifiedTally {
    per: [TargetTally; 3],
}

impl StratifiedTally {
    /// An empty stratified tally.
    #[must_use]
    pub fn new() -> Self {
        StratifiedTally::default()
    }

    /// Records one classified injection under its stratum.
    pub fn record(&mut self, stratum: Stratum, outcome: Outcome) {
        self.per[stratum_index(stratum)].record(outcome);
    }

    /// Counts for one stratum.
    #[must_use]
    pub fn get(&self, stratum: Stratum) -> TargetTally {
        self.per[stratum_index(stratum)]
    }

    /// Total injections across all strata.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per.iter().map(|c| c.attempts()).sum()
    }

    /// Folds another stratified tally into this one.
    pub fn merge(&mut self, other: &StratifiedTally) {
        for (mine, theirs) in self.per.iter_mut().zip(&other.per) {
            mine.vacant += theirs.vacant;
            mine.masked += theirs.masked;
            mine.sdc += theirs.sdc;
            mine.due_hang += theirs.due_hang;
            mine.due_panic += theirs.due_panic;
        }
    }

    /// The soundness gate: the predicted-dead stratum's measured
    /// vulnerability is statistically consistent with zero at 95%
    /// confidence — zero lies within `vulnerability ± ci95`. An empty
    /// stratum passes vacuously (callers that need statistical power
    /// should additionally check [`StratifiedTally::get`] attempts).
    #[must_use]
    pub fn dead_stratum_consistent_with_zero(&self) -> bool {
        let dead = self.get(Stratum::PredictedDead);
        dead.vulnerability() <= dead.ci95() + 1e-12
    }

    /// Renders the stratified tally as a JSON object keyed by stratum
    /// name, integer counts only — byte-for-byte reproducible, so the CI
    /// smoke job can diff it against a committed golden file.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in Stratum::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let c = self.get(s);
            out.push_str(&format!(
                "\"{}\":{{\"vacant\":{},\"masked\":{},\"sdc\":{},\"due_hang\":{},\"due_panic\":{}}}",
                s.name(),
                c.vacant,
                c.masked,
                c.sdc,
                c.due_hang,
                c.due_panic
            ));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_maps_onto_strata() {
        assert_eq!(Stratum::from_prediction(Some(true)), Stratum::PredictedDead);
        assert_eq!(
            Stratum::from_prediction(Some(false)),
            Stratum::PredictedLive
        );
        assert_eq!(Stratum::from_prediction(None), Stratum::Unknown);
    }

    #[test]
    fn gate_accepts_zero_and_small_rates_rejects_large() {
        // All-masked dead stratum: trivially consistent with zero.
        let mut t = StratifiedTally::new();
        for _ in 0..100 {
            t.record(Stratum::PredictedDead, Outcome::Masked);
        }
        assert!(t.dead_stratum_consistent_with_zero());

        // 1 SDC in 100: p = 0.01, ci95 ≈ 0.0195 — still consistent.
        t.record(Stratum::PredictedDead, Outcome::Sdc);
        assert!(t.dead_stratum_consistent_with_zero());

        // 20 SDC in ~120: far outside the interval.
        for _ in 0..19 {
            t.record(Stratum::PredictedDead, Outcome::Sdc);
        }
        assert!(!t.dead_stratum_consistent_with_zero());
    }

    #[test]
    fn live_stratum_outcomes_never_affect_the_gate() {
        let mut t = StratifiedTally::new();
        for _ in 0..50 {
            t.record(Stratum::PredictedLive, Outcome::Sdc);
            t.record(Stratum::Unknown, Outcome::DueHang);
        }
        assert!(t.dead_stratum_consistent_with_zero());
        assert_eq!(t.total(), 100);
        assert_eq!(t.get(Stratum::PredictedDead).attempts(), 0);
    }

    #[test]
    fn json_is_stable_integer_only_and_covers_every_stratum() {
        let mut t = StratifiedTally::new();
        t.record(Stratum::PredictedDead, Outcome::Masked);
        t.record(Stratum::PredictedLive, Outcome::Sdc);
        let json = t.to_json();
        assert_eq!(
            json,
            "{\"predicted_dead\":{\"vacant\":0,\"masked\":1,\"sdc\":0,\"due_hang\":0,\"due_panic\":0},\
             \"predicted_live\":{\"vacant\":0,\"masked\":0,\"sdc\":1,\"due_hang\":0,\"due_panic\":0},\
             \"unknown\":{\"vacant\":0,\"masked\":0,\"sdc\":0,\"due_hang\":0,\"due_panic\":0}}"
        );
        assert!(!json.contains('.'), "floats are not byte-stable: {json}");
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = StratifiedTally::new();
        a.record(Stratum::PredictedDead, Outcome::Masked);
        a.record(Stratum::Unknown, Outcome::Vacant);
        let mut b = StratifiedTally::new();
        b.record(Stratum::PredictedLive, Outcome::DuePanic);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 3);
    }
}
