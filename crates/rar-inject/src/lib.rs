//! Statistical fault-injection campaigns that cross-validate ACE-based
//! AVF estimates.
//!
//! ACE-bit analysis (the estimator the paper's Table III is built on) and
//! statistical fault injection (SFI) are the two standard ways to measure
//! architectural vulnerability, and each keeps the other honest: ACE
//! analysis is conservative (un-ACE-ness must be *proven*), while SFI is
//! ground truth for the sampled sites but only statistical. This crate
//! provides the campaign half:
//!
//! - [`outcome`] — the masked / SDC / DUE taxonomy, per-structure integer
//!   tallies, and 95% normal-approximation confidence intervals;
//! - [`journal`] — a JSONL completion journal with batched fsync and
//!   torn-tail-tolerant loading, making campaigns crash-consistent;
//! - [`campaign`] — the resumable multi-threaded runner: `catch_unwind`
//!   per injection, transient-failure retry with capped backoff, and
//!   graceful degradation to partial results;
//! - [`validate`] — per-prediction-stratum tallies for auditing the
//!   static bit-liveness analysis: strikes into bits the analysis proved
//!   dead must show vulnerability statistically consistent with zero.
//!
//! Site planning (what to hit, when) lives in `rar_core::inject`; the
//! simulator-facing executor that arms a fault, runs the pipeline under a
//! watchdog, and diffs commit digests lives in `rar-sim`. This crate is
//! deliberately simulator-agnostic: the runner only needs a
//! [`rar_core::FaultInjector`] and a classification closure, which is what
//! makes its determinism and resume logic testable with mock executors in
//! milliseconds.

pub mod campaign;
pub mod journal;
pub mod outcome;
pub mod validate;

pub use campaign::{run_campaign, CampaignResult, CampaignSpec};
pub use journal::{
    load_journal, validate_journal_path, JournalPathError, JournalRecord, JournalWriter,
};
pub use outcome::{Outcome, Tally, TargetTally};
pub use validate::{StratifiedTally, Stratum};
