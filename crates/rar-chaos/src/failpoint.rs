//! Named fail-point sites with deterministic firing schedules.
//!
//! A *fail-point* is a named hook compiled into a host-side I/O or
//! concurrency edge (`rar_chaos::fire(sites::...)`). In production
//! builds (feature `enabled` off) every hook is an inlined `None`. In
//! chaos builds a [`ChaosPlan`] arms a subset of sites; each armed site
//! fires on the calls whose per-site sequence number `n` satisfies
//! `n % one_in == offset`, which makes injection schedules exactly
//! reproducible run-to-run. The plan seed only feeds the payload
//! [`ChaosHit::roll`] (used e.g. to pick a corruption point or a stall
//! duration), never *whether* a site fires.

use std::io;

/// Environment variable holding a chaos plan for cross-process runs
/// (e.g. a daemon restarted by the CI kill-then-restart smoke).
///
/// Format: `;`-separated entries, each either `seed=N` or
/// `SITE:ONE_IN[:OFFSET]`, e.g.
/// `seed=7;serve.queue.journal.torn:2;sim.cache.read.err:3:1`.
pub const ENV_VAR: &str = "RAR_CHAOS";

/// Whether the fail-point fabric is compiled into this build.
///
/// `false` in default builds: every [`fire`] call site is an inlined
/// `None`, and [`install`] / [`install_from_env`] are no-ops. Binaries
/// use this to warn when [`ENV_VAR`] is set but cannot take effect.
pub const COMPILED: bool = cfg!(feature = "enabled");

/// Catalog of registered fail-point sites.
///
/// Every site listed in [`sites::ALL`] is (a) threaded through the
/// corresponding host edge, (b) documented in DESIGN.md §17 and (c)
/// exercised by at least one test — xtask lint 9 enforces all three.
pub mod sites {
    /// Disk-cache probe returns an I/O error (`DiskCache::try_load`).
    pub const SIM_CACHE_READ_ERR: &str = "sim.cache.read.err";
    /// Disk-cache probe reads a corrupted entry: the on-disk text is
    /// truncated before decoding, so the strict decoder treats it as a
    /// miss and the cell is re-simulated.
    pub const SIM_CACHE_READ_CORRUPT: &str = "sim.cache.read.corrupt";
    /// Disk-cache store fails with an I/O error (`DiskCache::store`).
    pub const SIM_CACHE_WRITE_ERR: &str = "sim.cache.write.err";
    /// Disk-cache I/O completes but only after an injected latency stall.
    pub const SIM_CACHE_IO_SLOW: &str = "sim.cache.io.slow";
    /// Injection-journal flush fails before any bytes reach the file
    /// (`JournalWriter::sync`); the record buffer is retained for retry.
    pub const INJECT_JOURNAL_APPEND_ERR: &str = "inject.journal.append.err";
    /// Queue-journal append is torn: a prefix of the record is written,
    /// then the write fails. Replay must recover the durable prefix.
    pub const SERVE_QUEUE_JOURNAL_TORN: &str = "serve.queue.journal.torn";
    /// Queue-journal append is silently short: fewer bytes than requested
    /// land on disk and the write reports success. Caught by the
    /// length-verify step and rolled back.
    pub const SERVE_QUEUE_JOURNAL_SHORT: &str = "serve.queue.journal.short";
    /// Queue-journal fsync fails after a fully written record.
    pub const SERVE_QUEUE_JOURNAL_FSYNC: &str = "serve.queue.journal.fsync";
    /// Worker thread panics right after claiming a job; the supervisor
    /// must requeue the claimed job and respawn the worker.
    pub const SERVE_WORKER_PANIC: &str = "serve.worker.panic";
    /// HTTP connection is dropped after the request is read, before any
    /// response bytes are written.
    pub const SERVE_HTTP_CONN_DROP: &str = "serve.http.conn.drop";
    /// HTTP response is stalled by an injected delay before the response
    /// is written (exercises client read timeouts).
    pub const SERVE_HTTP_CONN_STALL: &str = "serve.http.conn.stall";

    /// All registered fail-point site names.
    pub const ALL: [&str; 11] = [
        SIM_CACHE_READ_ERR,
        SIM_CACHE_READ_CORRUPT,
        SIM_CACHE_WRITE_ERR,
        SIM_CACHE_IO_SLOW,
        INJECT_JOURNAL_APPEND_ERR,
        SERVE_QUEUE_JOURNAL_TORN,
        SERVE_QUEUE_JOURNAL_SHORT,
        SERVE_QUEUE_JOURNAL_FSYNC,
        SERVE_WORKER_PANIC,
        SERVE_HTTP_CONN_DROP,
        SERVE_HTTP_CONN_STALL,
    ];
}

/// One armed site within a [`ChaosPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SitePlan {
    /// Site name; must be one of [`sites::ALL`].
    pub site: String,
    /// Fire on one call out of every `one_in` (must be ≥ 1; 1 = always).
    pub one_in: u64,
    /// Phase within the cycle: the site fires on calls with
    /// `n % one_in == offset` (reduced modulo `one_in`).
    pub offset: u64,
}

/// A deterministic fault-injection schedule over a set of sites.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed mixed into each hit's [`ChaosHit::roll`] payload.
    pub seed: u64,
    /// Armed sites; unlisted sites never fire.
    pub sites: Vec<SitePlan>,
}

impl ChaosPlan {
    /// Plan arming a single site.
    #[must_use]
    pub fn single(site: &str, one_in: u64, offset: u64) -> Self {
        Self {
            seed: 0,
            sites: Vec::new(),
        }
        .with_site(site, one_in, offset)
    }

    /// Set the payload seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Arm an additional site.
    #[must_use]
    pub fn with_site(mut self, site: &str, one_in: u64, offset: u64) -> Self {
        let one_in = one_in.max(1);
        self.sites.push(SitePlan {
            site: site.to_string(),
            one_in,
            offset: offset % one_in,
        });
        self
    }

    /// Parse the [`ENV_VAR`] spec format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry or unknown
    /// site name.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .parse::<u64>()
                    .map_err(|e| format!("chaos spec: bad seed {seed:?}: {e}"))?;
                continue;
            }
            let mut parts = entry.split(':');
            let site = parts.next().unwrap_or_default();
            if !sites::ALL.contains(&site) {
                return Err(format!("chaos spec: unknown fail-point site {site:?}"));
            }
            let one_in = match parts.next() {
                Some(text) => text
                    .parse::<u64>()
                    .map_err(|e| format!("chaos spec: bad one_in in {entry:?}: {e}"))?,
                None => 1,
            };
            if one_in == 0 {
                return Err(format!("chaos spec: one_in must be >= 1 in {entry:?}"));
            }
            let offset = match parts.next() {
                Some(text) => text
                    .parse::<u64>()
                    .map_err(|e| format!("chaos spec: bad offset in {entry:?}: {e}"))?,
                None => 0,
            };
            if parts.next().is_some() {
                return Err(format!("chaos spec: too many fields in {entry:?}"));
            }
            plan = plan.with_site(site, one_in, offset);
        }
        Ok(plan)
    }
}

/// Payload returned when a fail-point fires.
#[derive(Debug, Clone, Copy)]
pub struct ChaosHit {
    /// Deterministic pseudo-random payload derived from `(seed, site,
    /// call index)`; used to vary the injected fault (corruption point,
    /// stall duration, torn-write length) without extra plan knobs.
    pub roll: u64,
}

/// splitmix64 finalizer: cheap, well-mixed, dependency-free.
#[cfg(feature = "enabled")]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the site name, so each site gets an independent roll stream.
#[cfg(feature = "enabled")]
fn site_hash(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(feature = "enabled")]
mod armed {
    use super::{mix, site_hash, ChaosHit, ChaosPlan, ENV_VAR};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{OnceLock, RwLock};

    struct SiteState {
        site: String,
        one_in: u64,
        offset: u64,
        calls: AtomicU64,
        injected: AtomicU64,
    }

    struct PlanState {
        seed: u64,
        sites: Vec<SiteState>,
    }

    fn state() -> &'static RwLock<Option<PlanState>> {
        static STATE: OnceLock<RwLock<Option<PlanState>>> = OnceLock::new();
        STATE.get_or_init(|| RwLock::new(None))
    }

    pub fn install(plan: &ChaosPlan) {
        let sites = plan
            .sites
            .iter()
            .map(|s| SiteState {
                site: s.site.clone(),
                one_in: s.one_in.max(1),
                offset: s.offset % s.one_in.max(1),
                calls: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            })
            .collect();
        let mut guard = state()
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = Some(PlanState {
            seed: plan.seed,
            sites,
        });
    }

    pub fn clear() {
        let mut guard = state()
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = None;
    }

    pub fn is_active() -> bool {
        let guard = state()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.is_some()
    }

    pub fn fire(site: &str) -> Option<ChaosHit> {
        let guard = state()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let plan = guard.as_ref()?;
        let armed = plan.sites.iter().find(|s| s.site == site)?;
        let n = armed.calls.fetch_add(1, Ordering::Relaxed);
        if n % armed.one_in != armed.offset {
            return None;
        }
        armed.injected.fetch_add(1, Ordering::Relaxed);
        let roll = mix(plan.seed ^ site_hash(site) ^ mix(n));
        Some(ChaosHit { roll })
    }

    pub fn injected_counts() -> Vec<(String, u64)> {
        let guard = state()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(plan) = guard.as_ref() else {
            return Vec::new();
        };
        let mut counts: Vec<(String, u64)> = plan
            .sites
            .iter()
            .map(|s| (s.site.clone(), s.injected.load(Ordering::Relaxed)))
            .collect();
        counts.sort();
        counts
    }

    pub fn install_from_env() -> Result<Option<ChaosPlan>, String> {
        match std::env::var(ENV_VAR) {
            Ok(spec) if !spec.trim().is_empty() => {
                let plan = ChaosPlan::parse(&spec)?;
                install(&plan);
                Ok(Some(plan))
            }
            _ => Ok(None),
        }
    }
}

// ---------------------------------------------------------------------------
// Public fabric API. With feature `enabled` these delegate to the armed
// implementation; without it they are inlined no-ops so call sites carry
// zero overhead and the chaos machinery is dead-code-eliminated.
// ---------------------------------------------------------------------------

/// Install a chaos plan process-wide, resetting all per-site counters.
///
/// No-op when the fabric is not compiled in ([`COMPILED`] is `false`).
pub fn install(plan: &ChaosPlan) {
    #[cfg(feature = "enabled")]
    armed::install(plan);
    #[cfg(not(feature = "enabled"))]
    let _ = plan;
}

/// Disarm all fail-points (tests call this between cases).
pub fn clear() {
    #[cfg(feature = "enabled")]
    armed::clear();
}

/// Whether a chaos plan is currently installed.
#[must_use]
pub fn is_active() -> bool {
    #[cfg(feature = "enabled")]
    {
        armed::is_active()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Check the named fail-point; returns a hit payload when it fires.
#[inline]
#[must_use]
pub fn fire(site: &str) -> Option<ChaosHit> {
    #[cfg(feature = "enabled")]
    {
        armed::fire(site)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = site;
        None
    }
}

/// Per-site injected-fault counts for the installed plan, sorted by site.
///
/// Exported by the daemon's `/metrics` endpoint as
/// `rar_chaos_injections_total{site="..."}`.
#[must_use]
pub fn injected_counts() -> Vec<(String, u64)> {
    #[cfg(feature = "enabled")]
    {
        armed::injected_counts()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Install a plan from the [`ENV_VAR`] environment variable, if set.
///
/// Returns the installed plan for display, `Ok(None)` when the variable
/// is unset/empty or the fabric is not compiled in.
///
/// # Errors
///
/// Returns a parse error for a malformed spec (only when compiled in).
pub fn install_from_env() -> Result<Option<ChaosPlan>, String> {
    #[cfg(feature = "enabled")]
    {
        armed::install_from_env()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Ok(None)
    }
}

/// Fail with an injected I/O error when `site` fires.
///
/// # Errors
///
/// Returns an `io::Error` describing the injected fault when the
/// fail-point fires; otherwise `Ok(())`.
#[inline]
pub fn maybe_io_err(site: &str) -> io::Result<()> {
    match fire(site) {
        Some(_) => Err(io::Error::other(format!(
            "chaos: injected I/O error at fail-point `{site}`"
        ))),
        None => Ok(()),
    }
}

/// Panic with an injected fault when `site` fires.
#[inline]
pub fn maybe_panic(site: &str) {
    if fire(site).is_some() {
        panic!("chaos: injected panic at fail-point `{site}`");
    }
}

/// Sleep for a small deterministic-duration stall when `site` fires.
///
/// The stall is `1 + roll % cap_ms` milliseconds, so schedules stay
/// reproducible and tests stay fast.
#[inline]
pub fn maybe_sleep(site: &str, cap_ms: u64) {
    if let Some(hit) = fire(site) {
        let ms = 1 + hit.roll % cap_ms.max(1);
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parse_round_trip() {
        let plan =
            ChaosPlan::parse("seed=7; serve.queue.journal.torn:2 ;sim.cache.read.err:3:1").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.sites.len(), 2);
        assert_eq!(plan.sites[0].site, sites::SERVE_QUEUE_JOURNAL_TORN);
        assert_eq!(plan.sites[0].one_in, 2);
        assert_eq!(plan.sites[0].offset, 0);
        assert_eq!(plan.sites[1].one_in, 3);
        assert_eq!(plan.sites[1].offset, 1);
    }

    #[test]
    fn plan_parse_rejects_unknown_site_and_bad_numbers() {
        assert!(ChaosPlan::parse("no.such.site:2").is_err());
        assert!(ChaosPlan::parse("sim.cache.read.err:0").is_err());
        assert!(ChaosPlan::parse("sim.cache.read.err:x").is_err());
        assert!(ChaosPlan::parse("seed=nope").is_err());
        assert!(ChaosPlan::parse("sim.cache.read.err:2:1:9").is_err());
    }

    #[test]
    fn offset_is_reduced_modulo_one_in() {
        let plan = ChaosPlan::single("sim.cache.read.err", 3, 7);
        assert_eq!(plan.sites[0].offset, 1);
    }

    /// The fabric is process-global; armed tests serialize on this lock.
    #[cfg(feature = "enabled")]
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn armed_site_fires_on_exact_schedule() {
        let _guard = test_lock();
        let plan = ChaosPlan::single(sites::SIM_CACHE_READ_ERR, 3, 1).with_seed(42);
        install(&plan);
        let fired: Vec<bool> = (0..9)
            .map(|_| fire(sites::SIM_CACHE_READ_ERR).is_some())
            .collect();
        assert_eq!(
            fired,
            [false, true, false, false, true, false, false, true, false]
        );
        // Unarmed sites never fire.
        assert!(fire(sites::SIM_CACHE_WRITE_ERR).is_none());
        let counts = injected_counts();
        assert_eq!(counts, vec![(sites::SIM_CACHE_READ_ERR.to_string(), 3)]);
        clear();
        assert!(fire(sites::SIM_CACHE_READ_ERR).is_none());
        assert!(!is_active());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn rolls_are_deterministic_for_a_seed() {
        let _guard = test_lock();
        let plan = ChaosPlan::single(sites::SIM_CACHE_IO_SLOW, 1, 0).with_seed(7);
        install(&plan);
        let a: Vec<u64> = (0..4)
            .map(|_| fire(sites::SIM_CACHE_IO_SLOW).unwrap().roll)
            .collect();
        install(&plan); // reinstall resets counters
        let b: Vec<u64> = (0..4)
            .map(|_| fire(sites::SIM_CACHE_IO_SLOW).unwrap().roll)
            .collect();
        assert_eq!(a, b);
        clear();
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_fabric_is_inert() {
        install(&ChaosPlan::single(sites::SIM_CACHE_READ_ERR, 1, 0));
        assert!(!is_active());
        assert!(fire(sites::SIM_CACHE_READ_ERR).is_none());
        assert!(maybe_io_err(sites::SIM_CACHE_READ_ERR).is_ok());
        maybe_panic(sites::SERVE_WORKER_PANIC);
        assert!(injected_counts().is_empty());
    }
}
