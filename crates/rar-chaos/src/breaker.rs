//! Circuit breaker: closed / open / half-open with a single probe.
//!
//! Generalizes the sweep engine's original latched cache-off bit. The
//! old behavior — one exhausted retry loop disables the disk cache for
//! the life of the process — is the `cooldown = forever` special case;
//! the breaker instead re-admits a single probe call after a cooldown
//! and closes again if the probe succeeds, so a transiently broken disk
//! (full, remounting, NFS blip) does not permanently cost the cache.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker configuration.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive recorded failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting one probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 1,
            cooldown: Duration::from_secs(30),
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are rejected until the cooldown elapses.
    Open,
    /// One probe call is in flight; its outcome decides the next state.
    HalfOpen,
}

impl BreakerState {
    /// Numeric encoding for the `*_breaker_state` gauge
    /// (0 = closed, 1 = open, 2 = half-open).
    #[must_use]
    pub fn as_gauge(self) -> f64 {
        match self {
            Self::Closed => 0.0,
            Self::Open => 1.0,
            Self::HalfOpen => 2.0,
        }
    }
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    trips: u64,
}

/// Thread-safe circuit breaker.
///
/// Callers bracket the protected operation with [`allow`] and one of
/// [`record_success`] / [`record_failure`]:
///
/// ```
/// use rar_chaos::{BreakerConfig, CircuitBreaker};
/// let breaker = CircuitBreaker::new(BreakerConfig::default());
/// if breaker.allow() {
///     // ... attempt the guarded operation ...
///     breaker.record_success();
/// }
/// ```
///
/// [`allow`]: CircuitBreaker::allow
/// [`record_success`]: CircuitBreaker::record_success
/// [`record_failure`]: CircuitBreaker::record_failure
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// New breaker in the closed state.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                trips: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Whether a call may proceed now.
    ///
    /// Closed: always. Open: only once the cooldown has elapsed, in
    /// which case the breaker moves to half-open and this call becomes
    /// the probe (subsequent `allow` calls return `false` until the
    /// probe reports its outcome). Half-open: the probe slot is taken.
    pub fn allow(&self) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let elapsed = inner
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.config.cooldown);
                if elapsed {
                    inner.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful call: closes the breaker and resets counters.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
    }

    /// Record a failed call. Returns `true` when this failure tripped
    /// the breaker open (callers use this to log/count the trip once).
    pub fn record_failure(&self) -> bool {
        let mut inner = self.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let should_open = match inner.state {
            // A failed half-open probe reopens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if should_open {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(Instant::now());
            inner.trips += 1;
            true
        } else {
            false
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Total number of closed/half-open → open transitions.
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn trips_after_threshold_and_blocks() {
        let b = quick(2, 60_000);
        assert!(b.allow());
        assert!(!b.record_failure());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record_failure());
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = quick(1, 0);
        assert!(b.record_failure());
        // Cooldown of zero: next allow() becomes the probe.
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe slot is exclusive.
        assert!(!b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = quick(1, 0);
        assert!(b.record_failure());
        assert!(b.allow());
        assert!(b.record_failure());
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_failure_streak() {
        let b = quick(3, 60_000);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert!((BreakerState::Closed.as_gauge() - 0.0).abs() < f64::EPSILON);
        assert!((BreakerState::Open.as_gauge() - 1.0).abs() < f64::EPSILON);
        assert!((BreakerState::HalfOpen.as_gauge() - 2.0).abs() < f64::EPSILON);
    }
}
