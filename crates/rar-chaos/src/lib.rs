//! Deterministic chaos fabric for the RAR host-side system.
//!
//! The paper's thesis is that reliability must be engineered and
//! *measured*, not assumed. PR 5 applied that to the simulated hardware
//! (statistical fault injection cross-validating ACE AVF); this crate
//! applies the same discipline to the host-side system grown around the
//! simulator — the campaign daemon, its journaled queue, the disk-backed
//! result cache and the injection journal. Three pieces:
//!
//! * [`failpoint`] — named, deterministically scheduled fail-point sites
//!   threaded through every host I/O and concurrency edge (see
//!   [`failpoint::sites`] for the catalog). Compiled away entirely unless
//!   the `enabled` cargo feature is on: without it, [`fire`] is an
//!   inlined `None` and call sites cost nothing, the same
//!   compile-away contract as `NullProfiler` / `NullRecorder`.
//! * [`retry`] — the one shared [`retry_with_backoff`] helper (bounded
//!   attempts, decorrelated jitter, optional telemetry counter) that
//!   replaces the three ad-hoc retry loops that had grown independently
//!   in the sweep cache, the injection journal and the thin HTTP client.
//! * [`breaker`] — a [`CircuitBreaker`] (closed / open / half-open with a
//!   single probe) generalizing the sweep engine's old latched
//!   cache-off bit: instead of disabling the result cache forever after
//!   one bad probe, the breaker re-probes after a cooldown and closes
//!   again if the disk recovered.
//!
//! Determinism is the design center: a fail-point plan is `(seed, site,
//! one_in, offset)` tuples, and a site fires on exactly the calls whose
//! per-site sequence number `n` satisfies `n % one_in == offset`. Two
//! runs with the same plan inject the same faults at the same points, so
//! the chaos suite can assert byte-identical convergence against clean
//! golden runs.

pub mod breaker;
pub mod failpoint;
pub mod retry;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use failpoint::{
    clear, fire, injected_counts, install, install_from_env, is_active, maybe_io_err, maybe_panic,
    maybe_sleep, sites, ChaosHit, ChaosPlan, SitePlan, COMPILED, ENV_VAR,
};
pub use retry::{retry_with_backoff, RetryPolicy};
