//! The one shared bounded-retry helper.
//!
//! Three host-side retry loops had grown independently — the sweep
//! engine's cache I/O (`1 << (2*attempt)` ms), the injection journal's
//! append retry (same shape, different cap) and the thin HTTP client's
//! reconnect loop. They are all expressed over [`retry_with_backoff`]
//! now: bounded attempts, decorrelated-jitter sleeps (deterministic for
//! a given seed, so chaos runs replay exactly), and an optional
//! per-call-site telemetry counter bumped once per failed attempt.

use rar_telemetry::Counter;
use std::time::Duration;

/// Bounded-retry policy.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included); clamped to ≥ 1.
    pub attempts: u32,
    /// Minimum sleep between attempts, milliseconds.
    pub base_ms: u64,
    /// Maximum sleep between attempts, milliseconds.
    pub cap_ms: u64,
}

impl RetryPolicy {
    /// New policy; `attempts` counts the first try.
    #[must_use]
    pub const fn new(attempts: u32, base_ms: u64, cap_ms: u64) -> Self {
        Self {
            attempts,
            base_ms,
            cap_ms,
        }
    }

    /// The historical cache-I/O shape: 3 attempts, 1–16 ms sleeps.
    #[must_use]
    pub const fn quick() -> Self {
        Self::new(3, 1, 16)
    }
}

/// xorshift64* step; dependency-free PRNG for jitter.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Run `op` up to `policy.attempts` times with decorrelated-jitter
/// backoff between failures.
///
/// `op` receives the 0-based attempt index. Every *failed* attempt bumps
/// `counter` (when given) once — so a call site that exhausts an
/// `attempts = 3` policy adds 3 to its counter, matching the historical
/// per-error accounting of the loops this helper replaced. The jitter
/// sequence is a pure function of `seed`, keeping retry schedules
/// reproducible under the chaos fabric.
///
/// # Errors
///
/// Returns the error from the final attempt when all attempts fail.
pub fn retry_with_backoff<T, E>(
    policy: RetryPolicy,
    seed: u64,
    counter: Option<&Counter>,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, E> {
    let attempts = policy.attempts.max(1);
    let base = policy.base_ms.max(1);
    let cap = policy.cap_ms.max(base);
    let mut rng = seed | 1; // xorshift state must be non-zero
    let mut sleep_ms = base;
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(value) => return Ok(value),
            Err(err) => {
                if let Some(counter) = counter {
                    counter.inc();
                }
                attempt += 1;
                if attempt >= attempts {
                    return Err(err);
                }
                // Decorrelated jitter: sleep in [base, min(cap, 3*prev)].
                let hi = (sleep_ms.saturating_mul(3)).clamp(base, cap);
                sleep_ms = base + next_rand(&mut rng) % (hi - base + 1);
                std::thread::sleep(Duration::from_millis(sleep_ms));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_first_success_without_counting() {
        let counter = Counter::default();
        let result: Result<u32, ()> =
            retry_with_backoff(RetryPolicy::quick(), 7, Some(&counter), |_| Ok(42));
        assert_eq!(result, Ok(42));
        assert_eq!(counter.get(), 0);
    }

    #[test]
    fn counts_each_failed_attempt_and_returns_last_error() {
        let counter = Counter::default();
        let mut seen = Vec::new();
        let result: Result<(), u32> =
            retry_with_backoff(RetryPolicy::new(3, 1, 2), 7, Some(&counter), |attempt| {
                seen.push(attempt);
                Err(attempt)
            });
        assert_eq!(result, Err(2));
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(counter.get(), 3);
    }

    #[test]
    fn recovers_mid_sequence() {
        let counter = Counter::default();
        let result: Result<&str, &str> =
            retry_with_backoff(RetryPolicy::new(4, 1, 2), 9, Some(&counter), |attempt| {
                if attempt < 2 {
                    Err("transient")
                } else {
                    Ok("done")
                }
            });
        assert_eq!(result, Ok("done"));
        assert_eq!(counter.get(), 2);
    }

    #[test]
    fn zero_attempts_clamps_to_one() {
        let result: Result<(), &str> =
            retry_with_backoff(RetryPolicy::new(0, 1, 1), 1, None, |_| Err("nope"));
        assert_eq!(result, Err("nope"));
    }
}
