//! Functional-unit pool with per-cycle issue-port and busy tracking.
//!
//! Adders and multipliers are pipelined (one issue per unit per cycle);
//! dividers are unpipelined (busy for their full latency). Loads, stores
//! and branches issue through the integer adders / memory ports.

use crate::config::{exec_latency, FuConfig};
use rar_isa::UopKind;

#[derive(Debug, Clone)]
struct UnitGroup {
    /// Per-unit cycle until which the unit is busy.
    busy_until: Vec<u64>,
    /// Issue slots consumed in the current cycle (pipelined units still
    /// accept at most one issue per cycle each).
    issued_this_cycle: usize,
    cycle: u64,
    pipelined: bool,
}

impl UnitGroup {
    fn new(count: usize, pipelined: bool) -> Self {
        UnitGroup {
            busy_until: vec![0; count],
            issued_this_cycle: 0,
            cycle: u64::MAX,
            pipelined,
        }
    }

    fn try_issue(&mut self, now: u64, latency: u64) -> bool {
        if self.cycle != now {
            self.cycle = now;
            self.issued_this_cycle = 0;
        }
        if self.issued_this_cycle >= self.busy_until.len() {
            return false;
        }
        // Find a unit that is free (for unpipelined) / exists (pipelined).
        let slot = self.busy_until.iter_mut().find(|b| **b <= now);
        match slot {
            Some(b) => {
                if !self.pipelined {
                    *b = now + latency;
                }
                self.issued_this_cycle += 1;
                true
            }
            None => false,
        }
    }
}

/// The complete execution pool of Table II.
#[derive(Debug, Clone)]
pub struct FuPool {
    int_add: UnitGroup,
    int_mul: UnitGroup,
    int_div: UnitGroup,
    fp_add: UnitGroup,
    fp_mul: UnitGroup,
    fp_div: UnitGroup,
    mem_ports: UnitGroup,
}

impl FuPool {
    /// Builds the pool from a configuration.
    #[must_use]
    pub fn new(config: &FuConfig) -> Self {
        FuPool {
            int_add: UnitGroup::new(config.int_add, true),
            int_mul: UnitGroup::new(config.int_mul, true),
            int_div: UnitGroup::new(config.int_div, false),
            fp_add: UnitGroup::new(config.fp_add, true),
            fp_mul: UnitGroup::new(config.fp_mul, true),
            fp_div: UnitGroup::new(config.fp_div, false),
            mem_ports: UnitGroup::new(config.mem_ports, true),
        }
    }

    /// Tries to claim an issue slot for `kind` at `now`. Returns `false`
    /// when every suitable unit is busy or its port was already used this
    /// cycle.
    pub fn try_issue(&mut self, kind: UopKind, now: u64) -> bool {
        let lat = exec_latency(kind);
        match kind {
            UopKind::IntAlu | UopKind::Branch | UopKind::Nop => self.int_add.try_issue(now, lat),
            UopKind::IntMul => self.int_mul.try_issue(now, lat),
            UopKind::IntDiv => self.int_div.try_issue(now, lat),
            UopKind::FpAdd => self.fp_add.try_issue(now, lat),
            UopKind::FpMul => self.fp_mul.try_issue(now, lat),
            UopKind::FpDiv => self.fp_div.try_issue(now, lat),
            UopKind::Load | UopKind::Store => self.mem_ports.try_issue(now, lat),
        }
    }

    /// Clears all busy state (pipeline flush).
    pub fn reset(&mut self) {
        for g in [
            &mut self.int_add,
            &mut self.int_mul,
            &mut self.int_div,
            &mut self.fp_add,
            &mut self.fp_mul,
            &mut self.fp_div,
            &mut self.mem_ports,
        ] {
            for b in &mut g.busy_until {
                *b = 0;
            }
            g.cycle = u64::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FuPool {
        FuPool::new(&FuConfig::baseline())
    }

    #[test]
    fn three_int_adds_per_cycle() {
        let mut p = pool();
        assert!(p.try_issue(UopKind::IntAlu, 10));
        assert!(p.try_issue(UopKind::IntAlu, 10));
        assert!(p.try_issue(UopKind::IntAlu, 10));
        assert!(!p.try_issue(UopKind::IntAlu, 10), "only 3 int adders");
        assert!(p.try_issue(UopKind::IntAlu, 11), "fresh cycle, fresh ports");
    }

    #[test]
    fn multiplier_is_pipelined() {
        let mut p = pool();
        assert!(p.try_issue(UopKind::IntMul, 10));
        assert!(!p.try_issue(UopKind::IntMul, 10), "one port per cycle");
        assert!(p.try_issue(UopKind::IntMul, 11), "pipelined: next cycle ok");
    }

    #[test]
    fn divider_is_unpipelined() {
        let mut p = pool();
        assert!(p.try_issue(UopKind::IntDiv, 10));
        assert!(!p.try_issue(UopKind::IntDiv, 11), "busy for 18 cycles");
        assert!(!p.try_issue(UopKind::IntDiv, 27));
        assert!(p.try_issue(UopKind::IntDiv, 28));
    }

    #[test]
    fn branches_share_int_adders() {
        let mut p = pool();
        assert!(p.try_issue(UopKind::Branch, 5));
        assert!(p.try_issue(UopKind::IntAlu, 5));
        assert!(p.try_issue(UopKind::IntAlu, 5));
        assert!(!p.try_issue(UopKind::Branch, 5));
    }

    #[test]
    fn two_memory_ports() {
        let mut p = pool();
        assert!(p.try_issue(UopKind::Load, 3));
        assert!(p.try_issue(UopKind::Store, 3));
        assert!(!p.try_issue(UopKind::Load, 3));
    }

    #[test]
    fn reset_clears_busy() {
        let mut p = pool();
        assert!(p.try_issue(UopKind::FpDiv, 10));
        assert!(!p.try_issue(UopKind::FpDiv, 12));
        p.reset();
        assert!(p.try_issue(UopKind::FpDiv, 12));
    }
}
