//! The reorder buffer and its in-flight instruction records.

use crate::regfile::PhysReg;
use rar_isa::Uop;
use rar_mem::HitLevel;
use std::collections::VecDeque;

/// One in-flight instruction: the micro-op plus every timestamp the ACE
/// analysis and the scheduler need.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Dynamic sequence number (index into the correct-path stream).
    pub seq: u64,
    /// The decoded micro-op.
    pub uop: Uop,
    /// Cycle the entry was allocated (ROB/IQ vulnerability starts here).
    pub dispatch_cycle: u64,
    /// Cycle the entry left the issue queue (IQ vulnerability ends here).
    pub issue_cycle: Option<u64>,
    /// Cycle execution started (LQ/SQ/RF vulnerability starts here).
    pub exec_start: Option<u64>,
    /// Cycle the result is (or will be) available; `None` until issued.
    pub complete_at: Option<u64>,
    /// Physical destination register, if the micro-op writes one.
    pub dest_phys: Option<PhysReg>,
    /// Previous mapping of the destination architectural register
    /// (freed at commit, restored on flush).
    pub old_phys: Option<PhysReg>,
    /// For loads/stores: which level served the access.
    pub mem_level: Option<HitLevel>,
    /// For branches: the fetch-time prediction was wrong.
    pub mispredicted: bool,
    /// Entry currently occupies an issue-queue slot.
    pub in_iq: bool,
    /// Sequence numbers of the in-flight producers of each source
    /// (captured at rename; used for stalling-slice extraction).
    pub src_writers: [Option<u64>; 2],
    /// Physical source registers (captured at rename; consulted by the
    /// issue stage's readiness check).
    pub src_phys_cache: [Option<PhysReg>; 2],
    /// Dispatched past a mispredicted branch; squashed at resolution and
    /// un-ACE by definition (only allocated when wrong-path modelling is
    /// enabled).
    pub wrong_path: bool,
    /// Execution latency on the functional unit.
    pub fu_latency: u64,
    /// Carries injected-fault poison: the entry's value or metadata was
    /// struck, or it consumed a poisoned source (fault-injection runs
    /// only; always `false` otherwise).
    pub faulted: bool,
}

impl Entry {
    /// Whether the instruction's result is available at `now`.
    #[must_use]
    pub fn completed(&self, now: u64) -> bool {
        self.complete_at.is_some_and(|c| c <= now)
    }
}

/// A circular-buffer reorder buffer holding [`Entry`] records in dispatch
/// order.
///
/// Sequence numbers of resident entries are contiguous, which makes
/// lookup-by-sequence O(1).
#[derive(Debug, Clone)]
pub struct Rob {
    entries: VecDeque<Entry>,
    capacity: usize,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Entries currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when dispatch must stall.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an entry at the tail.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or the sequence number is not
    /// consecutive.
    pub fn push(&mut self, entry: Entry) {
        assert!(!self.is_full(), "dispatch into a full ROB");
        if let Some(back) = self.entries.back() {
            assert_eq!(back.seq + 1, entry.seq, "ROB sequence must be contiguous");
        }
        self.entries.push_back(entry);
    }

    /// The oldest entry.
    #[must_use]
    pub fn head(&self) -> Option<&Entry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry (commit).
    pub fn pop_head(&mut self) -> Option<Entry> {
        self.entries.pop_front()
    }

    /// Entry with sequence number `seq`, if resident.
    #[must_use]
    pub fn get(&self, seq: u64) -> Option<&Entry> {
        let head_seq = self.entries.front()?.seq;
        if seq < head_seq {
            return None;
        }
        self.entries.get((seq - head_seq) as usize)
    }

    /// Mutable entry with sequence number `seq`, if resident.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut Entry> {
        let head_seq = self.entries.front()?.seq;
        if seq < head_seq {
            return None;
        }
        self.entries.get_mut((seq - head_seq) as usize)
    }

    /// Iterates oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// Mutable iteration, oldest to youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Entry> {
        self.entries.iter_mut()
    }

    /// Drains every entry (a full pipeline flush), oldest first.
    pub fn drain_all(&mut self) -> impl Iterator<Item = Entry> + '_ {
        self.entries.drain(..)
    }

    /// Drains all entries younger than `seq` (exclusive), youngest first
    /// is not required — returns them oldest first.
    pub fn drain_after(&mut self, seq: u64) -> Vec<Entry> {
        let Some(head_seq) = self.entries.front().map(|e| e.seq) else {
            return Vec::new();
        };
        if seq < head_seq {
            return self.entries.drain(..).collect();
        }
        let keep = ((seq - head_seq) as usize + 1).min(self.entries.len());
        self.entries.split_off(keep).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rar_isa::{Uop, UopKind};

    fn entry(seq: u64) -> Entry {
        Entry {
            seq,
            uop: Uop::alu(seq * 4, UopKind::IntAlu),
            dispatch_cycle: seq,
            issue_cycle: None,
            exec_start: None,
            complete_at: None,
            dest_phys: None,
            old_phys: None,
            mem_level: None,
            mispredicted: false,
            in_iq: true,
            src_writers: [None, None],
            src_phys_cache: [None, None],
            wrong_path: false,
            fu_latency: 1,
            faulted: false,
        }
    }

    #[test]
    fn fifo_order() {
        let mut rob = Rob::new(4);
        for s in 0..4 {
            rob.push(entry(s));
        }
        assert!(rob.is_full());
        assert_eq!(rob.pop_head().unwrap().seq, 0);
        assert_eq!(rob.head().unwrap().seq, 1);
        assert_eq!(rob.len(), 3);
    }

    #[test]
    fn get_by_sequence() {
        let mut rob = Rob::new(8);
        for s in 10..15 {
            rob.push(entry(s));
        }
        assert_eq!(rob.get(12).unwrap().seq, 12);
        assert!(rob.get(9).is_none());
        assert!(rob.get(15).is_none());
        rob.get_mut(13).unwrap().in_iq = false;
        assert!(!rob.get(13).unwrap().in_iq);
    }

    #[test]
    #[should_panic(expected = "full ROB")]
    fn push_full_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_push_panics() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(2));
    }

    #[test]
    fn drain_all_empties() {
        let mut rob = Rob::new(4);
        for s in 0..3 {
            rob.push(entry(s));
        }
        let drained: Vec<_> = rob.drain_all().collect();
        assert_eq!(drained.len(), 3);
        assert!(rob.is_empty());
    }

    #[test]
    fn drain_after_keeps_up_to_seq() {
        let mut rob = Rob::new(8);
        for s in 0..6 {
            rob.push(entry(s));
        }
        let squashed = rob.drain_after(2);
        assert_eq!(
            squashed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.head().unwrap().seq, 0);
        // Contiguity preserved for further pushes.
        rob.push(entry(3));
    }

    #[test]
    fn completed_predicate() {
        let mut e = entry(0);
        assert!(!e.completed(100));
        e.complete_at = Some(50);
        assert!(e.completed(50));
        assert!(!e.completed(49));
    }
}
