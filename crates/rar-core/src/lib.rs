//! The out-of-order core and every runahead variant — the paper's
//! contribution.
//!
//! This crate implements a cycle-level out-of-order core (Table II:
//! 4-wide, 192-entry ROB, 92-entry IQ, 64/64 LQ/SQ, 168+168 physical
//! registers, the Table II functional-unit pool) together with the eight
//! evaluated techniques ([`Technique`]):
//!
//! - the **OoO** baseline,
//! - **FLUSH** (Weaver et al.): flush behind a blocking miss, refill on
//!   return,
//! - **TR / TR-EARLY** (Mutlu et al.): traditional runahead — execute the
//!   whole future stream, flush at exit,
//! - **PRE / PRE-EARLY** (Naithani et al., HPCA 2020): lean runahead over
//!   stalling slices ([`sst::Sst`], [`sst::Prdq`]), ROB kept at exit,
//! - **RAR-LATE / RAR** (*this paper*): PRE plus flush-at-exit (back-end
//!   state becomes un-ACE) and, for RAR, the early countdown-timer trigger
//!   that fires as soon as a miss blocks commit.
//!
//! Reliability is accounted through `rar-ace` at commit/squash granularity:
//! see [`pipeline::Core`] for the modelling notes.
//!
//! # Examples
//!
//! ```
//! use rar_core::{Core, CoreConfig, Technique};
//! use rar_mem::MemConfig;
//! use rar_isa::{TraceWindow, Uop, UopKind, ArchReg};
//!
//! let stream = (0u64..).map(|i| {
//!     Uop::alu(0x1000 + (i % 32) * 4, UopKind::IntAlu)
//!         .with_dest(ArchReg::int((i % 8) as u8))
//! });
//! let mut core = Core::new(
//!     CoreConfig::baseline(),
//!     MemConfig::baseline(),
//!     Technique::Rar,
//!     TraceWindow::new(stream),
//! );
//! core.run_until_committed(500);
//! let report = core.reliability_report();
//! assert!(report.avf() >= 0.0);
//! ```

pub mod config;
pub mod fu;
pub mod inject;
pub mod pipeline;
pub mod regfile;
pub mod rob;
pub mod runahead;
pub mod sst;
pub mod stall;
pub mod stats;
pub mod technique;

pub use config::{exec_latency, CoreConfig, FuConfig};
pub use inject::{
    FaultInjector, FaultLanding, FaultReport, FaultTarget, PlannedFault, SiteSampler,
    XorShift64Star,
};
pub use pipeline::{Core, PipelineSnapshot, RunVerdict};
pub use rar_trace::{NullSink, RingSink, TraceEvent, TraceSink};
pub use stall::{occ_bucket, StallBucket, StallProfile, OCC_BUCKETS, OCC_STRUCTURES};
pub use stats::CoreStats;
pub use technique::{RunaheadFeatures, Technique};
