//! Physical register file, free lists, and the register alias table.

use rar_isa::{ArchReg, RegClass};

/// A physical register identifier: class plus index within that class's
/// physical file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysReg {
    /// Register class.
    pub class: RegClass,
    /// Index within the class's file.
    pub index: u16,
}

impl PhysReg {
    /// Dense index across both files given the integer-file size.
    #[must_use]
    pub fn flat(self, int_regs: usize) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => int_regs + self.index as usize,
        }
    }

    /// Width in bits (for ACE accounting).
    #[must_use]
    pub fn bits(self) -> u64 {
        self.class.bits()
    }
}

/// The physical register files with free lists.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    int_regs: usize,
    fp_regs: usize,
    free_int: Vec<u16>,
    free_fp: Vec<u16>,
}

impl PhysRegFile {
    /// Creates files of the given sizes with every register free.
    #[must_use]
    pub fn new(int_regs: usize, fp_regs: usize) -> Self {
        PhysRegFile {
            int_regs,
            fp_regs,
            free_int: (0..int_regs as u16).rev().collect(),
            free_fp: (0..fp_regs as u16).rev().collect(),
        }
    }

    /// Total registers across both classes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.int_regs + self.fp_regs
    }

    /// Integer-file size.
    #[must_use]
    pub fn int_regs(&self) -> usize {
        self.int_regs
    }

    /// Free registers remaining in `class`.
    #[must_use]
    pub fn free_count(&self, class: RegClass) -> usize {
        match class {
            RegClass::Int => self.free_int.len(),
            RegClass::Fp => self.free_fp.len(),
        }
    }

    /// Whether `reg` is currently on its free list (fault injection uses
    /// this to classify strikes into unallocated registers as vacant).
    #[must_use]
    pub fn is_free(&self, reg: PhysReg) -> bool {
        let list = match reg.class {
            RegClass::Int => &self.free_int,
            RegClass::Fp => &self.free_fp,
        };
        list.contains(&reg.index)
    }

    /// Allocates a register of `class`, or `None` when the file is
    /// exhausted (rename must stall).
    pub fn alloc(&mut self, class: RegClass) -> Option<PhysReg> {
        let idx = match class {
            RegClass::Int => self.free_int.pop()?,
            RegClass::Fp => self.free_fp.pop()?,
        };
        Some(PhysReg { class, index: idx })
    }

    /// Returns a register to its free list.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the register is double-freed.
    pub fn free(&mut self, reg: PhysReg) {
        let list = match reg.class {
            RegClass::Int => &mut self.free_int,
            RegClass::Fp => &mut self.free_fp,
        };
        debug_assert!(!list.contains(&reg.index), "double free of {reg:?}");
        list.push(reg.index);
    }

    /// Rebuilds the free lists as the complement of `live` (used after a
    /// pipeline flush, where only the architectural mapping survives).
    pub fn reset_free_except(&mut self, live: &[PhysReg]) {
        let mut int_live = vec![false; self.int_regs];
        let mut fp_live = vec![false; self.fp_regs];
        for r in live {
            match r.class {
                RegClass::Int => int_live[r.index as usize] = true,
                RegClass::Fp => fp_live[r.index as usize] = true,
            }
        }
        self.free_int = (0..self.int_regs as u16)
            .rev()
            .filter(|&i| !int_live[i as usize])
            .collect();
        self.free_fp = (0..self.fp_regs as u16)
            .rev()
            .filter(|&i| !fp_live[i as usize])
            .collect();
    }
}

/// The register alias table: architectural to physical mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rat {
    map: Vec<PhysReg>,
}

impl Rat {
    /// Builds the initial identity-ish mapping, consuming one physical
    /// register per architectural register from `prf`.
    ///
    /// # Panics
    ///
    /// Panics if `prf` cannot cover the architectural state.
    #[must_use]
    pub fn new(prf: &mut PhysRegFile) -> Self {
        let mut map = Vec::with_capacity(ArchReg::total_count());
        for i in 0..ArchReg::total_count() {
            let class = if i < 32 { RegClass::Int } else { RegClass::Fp };
            map.push(
                prf.alloc(class)
                    .expect("PRF must cover architectural state"),
            );
        }
        Rat { map }
    }

    /// Current physical register of `arch`.
    #[must_use]
    pub fn lookup(&self, arch: ArchReg) -> PhysReg {
        self.map[arch.flat_index()]
    }

    /// Redirects `arch` to `phys`, returning the previous mapping (the
    /// instruction's `old_phys`, freed at commit).
    pub fn rename(&mut self, arch: ArchReg, phys: PhysReg) -> PhysReg {
        std::mem::replace(&mut self.map[arch.flat_index()], phys)
    }

    /// All currently mapped physical registers.
    #[must_use]
    pub fn live_regs(&self) -> Vec<PhysReg> {
        self.map.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhausted() {
        let mut prf = PhysRegFile::new(34, 34);
        let mut got = 0;
        while prf.alloc(RegClass::Int).is_some() {
            got += 1;
        }
        assert_eq!(got, 34);
        assert_eq!(prf.free_count(RegClass::Fp), 34);
    }

    #[test]
    fn free_recycles() {
        let mut prf = PhysRegFile::new(33, 33);
        let r = prf.alloc(RegClass::Fp).unwrap();
        assert_eq!(prf.free_count(RegClass::Fp), 32);
        prf.free(r);
        assert_eq!(prf.free_count(RegClass::Fp), 33);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let mut prf = PhysRegFile::new(33, 33);
        let r = prf.alloc(RegClass::Int).unwrap();
        prf.free(r);
        prf.free(r);
    }

    #[test]
    fn rat_covers_architectural_state() {
        let mut prf = PhysRegFile::new(168, 168);
        let rat = Rat::new(&mut prf);
        assert_eq!(prf.free_count(RegClass::Int), 168 - 32);
        assert_eq!(prf.free_count(RegClass::Fp), 168 - 32);
        assert_eq!(rat.lookup(ArchReg::int(0)).class, RegClass::Int);
        assert_eq!(rat.lookup(ArchReg::fp(0)).class, RegClass::Fp);
    }

    #[test]
    fn rename_returns_old_mapping() {
        let mut prf = PhysRegFile::new(168, 168);
        let mut rat = Rat::new(&mut prf);
        let old = rat.lookup(ArchReg::int(3));
        let fresh = prf.alloc(RegClass::Int).unwrap();
        let returned = rat.rename(ArchReg::int(3), fresh);
        assert_eq!(returned, old);
        assert_eq!(rat.lookup(ArchReg::int(3)), fresh);
    }

    #[test]
    fn conservation_through_rename_commit_cycle() {
        // free + live-in-RAT + in-flight-old == total, always.
        let mut prf = PhysRegFile::new(40, 40);
        let mut rat = Rat::new(&mut prf);
        let mut in_flight: Vec<PhysReg> = Vec::new();
        for i in 0..200u64 {
            let arch = ArchReg::int((i % 32) as u8);
            if let Some(fresh) = prf.alloc(RegClass::Int) {
                let old = rat.rename(arch, fresh);
                in_flight.push(old);
            }
            if in_flight.len() > 4 {
                prf.free(in_flight.remove(0));
            }
            let total = prf.free_count(RegClass::Int)
                + rat
                    .live_regs()
                    .iter()
                    .filter(|r| r.class == RegClass::Int)
                    .count()
                + in_flight.len();
            assert_eq!(total, 40);
        }
    }

    #[test]
    fn reset_free_except_rebuilds_complement() {
        let mut prf = PhysRegFile::new(168, 168);
        let rat = Rat::new(&mut prf);
        // Allocate a bunch more, then flush back to architectural state.
        for _ in 0..50 {
            let _ = prf.alloc(RegClass::Int);
        }
        prf.reset_free_except(&rat.live_regs());
        assert_eq!(prf.free_count(RegClass::Int), 168 - 32);
        assert_eq!(prf.free_count(RegClass::Fp), 168 - 32);
    }

    #[test]
    fn flat_indexing_disjoint() {
        let a = PhysReg {
            class: RegClass::Int,
            index: 5,
        };
        let b = PhysReg {
            class: RegClass::Fp,
            index: 5,
        };
        assert_ne!(a.flat(168), b.flat(168));
        assert_eq!(b.flat(168), 173);
    }
}
