//! Runahead-mode state: the execution mode, the interval descriptor, and
//! the INV (invalid-result) tracker.
//!
//! During a runahead interval the core pseudo-executes the *future*
//! instruction stream. Results that cannot be computed — the blocking
//! load's destination, anything derived from an unreturned miss, and (in
//! lean mode) anything outside the known stalling slices — are INV.
//! A load whose address depends on an INV register cannot be prefetched;
//! this is precisely why pointer-chasing workloads (mcf) benefit less from
//! runahead prefetching than streaming workloads (libquantum).

use rar_isa::{ArchReg, Uop};

/// Validity of architectural register contents during runahead execution.
#[derive(Debug, Clone)]
pub struct InvTracker {
    valid: [bool; ArchReg::total_count()],
}

impl InvTracker {
    /// All registers valid (interval entry, before marking pending dests).
    #[must_use]
    pub fn all_valid() -> Self {
        InvTracker {
            valid: [true; ArchReg::total_count()],
        }
    }

    /// Marks `reg` INV.
    pub fn invalidate(&mut self, reg: ArchReg) {
        self.valid[reg.flat_index()] = false;
    }

    /// Sets validity of `reg`.
    pub fn set(&mut self, reg: ArchReg, valid: bool) {
        self.valid[reg.flat_index()] = valid;
    }

    /// True if `reg` currently holds a computable value.
    #[must_use]
    pub fn is_valid(&self, reg: ArchReg) -> bool {
        self.valid[reg.flat_index()]
    }

    /// True if every source of `uop` is valid.
    #[must_use]
    pub fn srcs_valid(&self, uop: &Uop) -> bool {
        uop.srcs().all(|s| self.is_valid(s))
    }
}

/// State of one runahead interval.
#[derive(Debug, Clone)]
pub struct RaState {
    /// Sequence number of the blocking load.
    pub blocking_seq: u64,
    /// Cycle at which the blocking load's data returns (interval end).
    pub exit_at: u64,
    /// Cycle the interval was entered.
    pub entered_at: u64,
    /// Next future-stream sequence number to process.
    pub ra_seq: u64,
    /// Register validity during this interval.
    pub inv: InvTracker,
    /// Extra entry cost (cycles) still to pay before processing
    /// (traditional runahead checkpoints architectural state on entry).
    pub entry_stall: u64,
}

/// The core's execution mode.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Ordinary out-of-order execution.
    Normal,
    /// Runahead execution (any variant).
    Runahead(RaState),
}

impl Mode {
    /// True while speculating in a runahead interval.
    #[must_use]
    pub fn is_runahead(&self) -> bool {
        matches!(self, Mode::Runahead(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rar_isa::{Uop, UopKind};

    #[test]
    fn inv_propagation_queries() {
        let mut inv = InvTracker::all_valid();
        assert!(inv.is_valid(ArchReg::int(0)));
        inv.invalidate(ArchReg::int(0));
        assert!(!inv.is_valid(ArchReg::int(0)));
        inv.set(ArchReg::int(0), true);
        assert!(inv.is_valid(ArchReg::int(0)));
    }

    #[test]
    fn srcs_valid_checks_all_sources() {
        let mut inv = InvTracker::all_valid();
        let u = Uop::alu(0, UopKind::IntAlu)
            .with_src(ArchReg::int(1))
            .with_src(ArchReg::int(2));
        assert!(inv.srcs_valid(&u));
        inv.invalidate(ArchReg::int(2));
        assert!(!inv.srcs_valid(&u));
    }

    #[test]
    fn int_and_fp_tracked_independently() {
        let mut inv = InvTracker::all_valid();
        inv.invalidate(ArchReg::int(3));
        assert!(inv.is_valid(ArchReg::fp(3)));
    }

    #[test]
    fn mode_predicate() {
        assert!(!Mode::Normal.is_runahead());
        let ra = Mode::Runahead(RaState {
            blocking_seq: 0,
            exit_at: 100,
            entered_at: 0,
            ra_seq: 1,
            inv: InvTracker::all_valid(),
            entry_stall: 0,
        });
        assert!(ra.is_runahead());
    }
}
