//! Per-run core statistics: performance (IPC), memory-level parallelism,
//! runahead telemetry.

/// Counters accumulated over one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Useful (correct-path) instructions committed.
    pub committed: u64,
    /// Branch mispredictions observed at dispatch.
    pub branch_mispredicts: u64,
    /// Sum over cycles of outstanding LLC misses (for average MLP).
    pub mlp_sum: u64,
    /// Cycles with at least one outstanding LLC miss.
    pub mlp_cycles: u64,
    /// Runahead intervals entered.
    pub runahead_intervals: u64,
    /// Cycles spent in runahead mode.
    pub runahead_cycles: u64,
    /// Future-stream micro-ops processed by the runahead engine.
    pub runahead_uops: u64,
    /// Prefetches issued from runahead mode (loads sent to memory).
    pub runahead_prefetches: u64,
    /// Runahead loads skipped because their address was invalid (INV).
    pub runahead_inv_loads: u64,
    /// Full pipeline flushes (runahead exits with flush, or FLUSH events).
    pub flushes: u64,
    /// In-flight instructions squashed by flushes.
    pub squashed: u64,
    /// Cycles dispatch was blocked by a full ROB.
    pub rob_full_cycles: u64,
    /// Cycles dispatch was blocked by a full issue queue.
    pub iq_full_cycles: u64,
    /// Cycles commit was blocked at the ROB head by an LLC miss.
    pub head_blocked_cycles: u64,
    /// Micro-ops dispatched into the back-end (correct and wrong path).
    pub dispatched: u64,
    /// Micro-ops issued to functional units in normal mode.
    pub issued: u64,
}

impl CoreStats {
    /// Useful instructions committed per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.committed as f64 / self.cycles as f64
    }

    /// Average memory-level parallelism: mean number of outstanding LLC
    /// misses over the cycles that had at least one (the paper's MLP
    /// metric in Figure 8b).
    #[must_use]
    pub fn mlp(&self) -> f64 {
        if self.mlp_cycles == 0 {
            return 0.0;
        }
        self.mlp_sum as f64 / self.mlp_cycles as f64
    }

    /// Mean runahead interval length in cycles.
    #[must_use]
    pub fn mean_runahead_interval(&self) -> f64 {
        if self.runahead_intervals == 0 {
            return 0.0;
        }
        self.runahead_cycles as f64 / self.runahead_intervals as f64
    }

    /// Accumulates every counter into `registry` under
    /// `rar_core_<field>_total`, so a sweep session can aggregate guest
    /// work (cycles, commits, runahead activity) across its cells. The
    /// field list here must stay exhaustive — `cargo xtask lint` checks
    /// that each `CoreStats` field is recorded.
    pub fn record_into(&self, registry: &rar_telemetry::MetricsRegistry) {
        for (name, value) in [
            ("cycles", self.cycles),
            ("committed", self.committed),
            ("branch_mispredicts", self.branch_mispredicts),
            ("mlp_sum", self.mlp_sum),
            ("mlp_cycles", self.mlp_cycles),
            ("runahead_intervals", self.runahead_intervals),
            ("runahead_cycles", self.runahead_cycles),
            ("runahead_uops", self.runahead_uops),
            ("runahead_prefetches", self.runahead_prefetches),
            ("runahead_inv_loads", self.runahead_inv_loads),
            ("flushes", self.flushes),
            ("squashed", self.squashed),
            ("rob_full_cycles", self.rob_full_cycles),
            ("iq_full_cycles", self.iq_full_cycles),
            ("head_blocked_cycles", self.head_blocked_cycles),
            ("dispatched", self.dispatched),
            ("issued", self.issued),
        ] {
            registry
                .counter(&format!("rar_core_{name}_total"))
                .add(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_definition() {
        let s = CoreStats {
            cycles: 200,
            committed: 100,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn mlp_definition() {
        let s = CoreStats {
            mlp_sum: 60,
            mlp_cycles: 20,
            ..CoreStats::default()
        };
        assert!((s.mlp() - 3.0).abs() < 1e-12);
        assert_eq!(CoreStats::default().mlp(), 0.0);
    }

    #[test]
    fn record_into_covers_every_field_and_accumulates() {
        let reg = rar_telemetry::MetricsRegistry::new();
        let s = CoreStats {
            cycles: 10,
            committed: 7,
            ..CoreStats::default()
        };
        s.record_into(&reg);
        s.record_into(&reg);
        assert_eq!(reg.counter("rar_core_cycles_total").get(), 20);
        assert_eq!(reg.counter("rar_core_committed_total").get(), 7 * 2);
        // One counter per CoreStats field.
        assert_eq!(reg.len(), 17);
    }

    #[test]
    fn mean_interval() {
        let s = CoreStats {
            runahead_intervals: 4,
            runahead_cycles: 800,
            ..CoreStats::default()
        };
        assert!((s.mean_runahead_interval() - 200.0).abs() < 1e-12);
    }
}
