//! PRE's runahead bookkeeping structures: the stalling slice table (SST)
//! and the precise register deallocation queue (PRDQ).
//!
//! The SST remembers the program counters of instructions that belong to
//! the *backward slices* of LLC-missing loads — the chains that compute
//! future load addresses. During lean runahead, only SST-resident
//! instructions (and loads themselves) are executed; everything else is
//! skipped after fetch. The table is learned in normal mode: whenever a
//! load turns out to miss the LLC, the core walks its in-flight producers
//! and inserts their PCs.
//!
//! The PRDQ bounds how many physical registers runahead execution may hold
//! at once; our timing model uses it as a concurrency cap on in-flight
//! runahead slice operations.

/// Fully-associative, LRU table of slice program counters.
///
/// # Examples
///
/// ```
/// use rar_core::sst::Sst;
/// let mut sst = Sst::new(4);
/// sst.insert(0x100);
/// assert!(sst.contains(0x100));
/// assert!(!sst.contains(0x104));
/// ```
#[derive(Debug, Clone)]
pub struct Sst {
    entries: Vec<(u64, u64)>, // (pc, last_use)
    capacity: usize,
    tick: u64,
    hits: u64,
    lookups: u64,
}

impl Sst {
    /// Creates an empty table with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Sst {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            lookups: 0,
        }
    }

    /// Inserts `pc`, evicting the LRU entry when full.
    pub fn insert(&mut self, pc: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == pc) {
            e.1 = tick;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((pc, tick));
            return;
        }
        let lru = self
            .entries
            .iter_mut()
            .min_by_key(|(_, t)| *t)
            .expect("capacity is nonzero");
        *lru = (pc, tick);
    }

    /// True if `pc` belongs to a known stalling slice; refreshes LRU and
    /// counts a lookup.
    pub fn contains(&mut self, pc: u64) -> bool {
        self.tick += 1;
        self.lookups += 1;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == pc) {
            e.1 = self.tick;
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Resident slice PCs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no slices have been learned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, lookups) telemetry.
    #[must_use]
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.lookups)
    }

    /// Fault injection: flips bit `bit` of the `idx`-th resident PC tag.
    /// Returns `false` when the addressed slot is vacant. The corrupted
    /// tag changes future slice-membership decisions only — the SST is
    /// pure prefetch metadata, so the architectural effect is timing.
    pub fn corrupt_entry(&mut self, idx: usize, bit: u64) -> bool {
        match self.entries.get_mut(idx) {
            Some(e) => {
                e.0 ^= 1 << (bit % 48);
                true
            }
            None => false,
        }
    }
}

/// The precise register deallocation queue: a counter-semantics model of
/// PRE's runahead register recycling. Runahead slice operations hold an
/// entry from pseudo-issue until their (pseudo-)release; when the queue is
/// full, runahead execution stalls.
#[derive(Debug, Clone)]
pub struct Prdq {
    capacity: usize,
    /// Release times of in-flight runahead operations.
    inflight: Vec<u64>,
    peak: usize,
}

impl Prdq {
    /// Creates an empty queue with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Prdq {
            capacity,
            inflight: Vec::new(),
            peak: 0,
        }
    }

    /// Tries to admit a runahead operation releasing at `release_at`.
    /// Returns `false` when the queue is full at `now`.
    pub fn try_push(&mut self, now: u64, release_at: u64) -> bool {
        self.inflight.retain(|&r| r > now);
        if self.inflight.len() >= self.capacity {
            return false;
        }
        self.inflight.push(release_at);
        self.peak = self.peak.max(self.inflight.len());
        true
    }

    /// Empties the queue (runahead exit).
    pub fn clear(&mut self) {
        self.inflight.clear();
    }

    /// High-water mark of simultaneously-held entries.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut sst = Sst::new(8);
        sst.insert(0x40);
        assert!(sst.contains(0x40));
        assert!(!sst.contains(0x44));
        assert_eq!(sst.hit_stats(), (1, 2));
    }

    #[test]
    fn lru_eviction() {
        let mut sst = Sst::new(2);
        sst.insert(0x10);
        sst.insert(0x20);
        assert!(sst.contains(0x10)); // refresh 0x10
        sst.insert(0x30); // evicts 0x20
        assert!(sst.contains(0x10));
        assert!(!sst.contains(0x20));
        assert!(sst.contains(0x30));
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let mut sst = Sst::new(2);
        sst.insert(0x10);
        sst.insert(0x10);
        assert_eq!(sst.len(), 1);
    }

    #[test]
    fn prdq_bounds_inflight() {
        let mut q = Prdq::new(2);
        assert!(q.try_push(0, 100));
        assert!(q.try_push(0, 200));
        assert!(!q.try_push(0, 300), "full");
        assert!(q.try_push(100, 300), "released at 100");
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn prdq_clear() {
        let mut q = Prdq::new(1);
        assert!(q.try_push(0, 1_000));
        q.clear();
        assert!(q.try_push(1, 1_000));
    }
}
