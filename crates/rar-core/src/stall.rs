//! Top-down cycle accounting: where every simulated cycle went.
//!
//! The six-phase host profiler in `rar-telemetry` says how long `core_sim`
//! takes; it cannot say *why*. This module holds the guest-side answer: a
//! per-cycle classifier (driven from `Core::cycle` when stall profiling is
//! enabled) attributes every measured cycle to exactly one
//! [`StallBucket`], so the buckets sum to total cycles by construction —
//! the conservation invariant CI checks on every export. The
//! [`StallBucket::Quiescent`] fraction is the headline number: cycles
//! where the whole pipeline did nothing (commit, dispatch, issue and the
//! runahead engine all idle), i.e. the upper bound on what an event-driven
//! fast-forward of the cycle loop could skip (ROADMAP open item 2).
//!
//! Alongside the taxonomy, [`StallProfile`] keeps log2 occupancy
//! histograms of the back-end structures (ROB/IQ/LQ/SQ/MSHR) sampled once
//! per cycle — the shape data for sizing sweeps without rerunning them.
//!
//! Classification priority (first match wins, evaluated at end of cycle):
//! retiring (committed something) → quiescent (nothing moved) → runahead
//! mode → DRAM wait (blocking head miss) → ROB full → IQ full → LQ/SQ
//! full → frontend (fetch stall / unresolved branch / wrong path) →
//! exec (back-end busy but nothing retired).

use rar_telemetry::MetricsRegistry;

/// One cause per cycle, first match wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallBucket {
    /// At least one correct-path instruction committed this cycle.
    Retiring,
    /// Nothing moved: no commit, no dispatch, no issue, no runahead work.
    /// The event-driven fast-forward opportunity.
    Quiescent,
    /// The core was in runahead mode (and doing runahead work).
    Runahead,
    /// Commit blocked at the ROB head by an outstanding LLC miss.
    DramWait,
    /// Dispatch blocked by a full ROB.
    RobFull,
    /// Dispatch blocked by a full issue queue.
    IqFull,
    /// Dispatch blocked by a full load or store queue.
    LsqFull,
    /// Front-end bound: fetch stall, unresolved mispredicted branch, or a
    /// wrong-path episode.
    Frontend,
    /// Back-end busy (issued or dispatched) without retiring.
    Exec,
}

impl StallBucket {
    /// Number of buckets.
    pub const COUNT: usize = 9;

    /// Every bucket, in classification-priority order.
    pub const ALL: [StallBucket; StallBucket::COUNT] = [
        StallBucket::Retiring,
        StallBucket::Quiescent,
        StallBucket::Runahead,
        StallBucket::DramWait,
        StallBucket::RobFull,
        StallBucket::IqFull,
        StallBucket::LsqFull,
        StallBucket::Frontend,
        StallBucket::Exec,
    ];

    /// Stable snake_case name used in JSON exports, metric names, and the
    /// dashboard.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StallBucket::Retiring => "retiring",
            StallBucket::Quiescent => "quiescent",
            StallBucket::Runahead => "runahead",
            StallBucket::DramWait => "dram_wait",
            StallBucket::RobFull => "rob_full",
            StallBucket::IqFull => "iq_full",
            StallBucket::LsqFull => "lsq_full",
            StallBucket::Frontend => "frontend",
            StallBucket::Exec => "exec",
        }
    }

    /// Position in [`StallBucket::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Occupancy histogram buckets: bucket 0 is "empty", bucket `j >= 1`
/// covers occupancies in `[2^(j-1), 2^j)`, the last bucket is open-ended.
pub const OCC_BUCKETS: usize = 12;

/// Structures whose occupancy is sampled once per profiled cycle, in
/// [`StallProfile::occupancy`] row order. `mshr` counts outstanding LLC
/// misses (the MLP set), the closest observable proxy for MSHR pressure.
pub const OCC_STRUCTURES: [&str; 5] = ["rob", "iq", "lq", "sq", "mshr"];

/// Log2 occupancy bucket for a sampled occupancy.
#[must_use]
pub fn occ_bucket(occ: usize) -> usize {
    if occ == 0 {
        0
    } else {
        ((usize::BITS - occ.leading_zeros()) as usize).min(OCC_BUCKETS - 1)
    }
}

/// Per-run cycle accounting: one tally per cycle (conservation: the tally
/// sum equals total measured cycles) plus per-structure occupancy shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallProfile {
    /// Cycles attributed to each bucket, indexed by [`StallBucket::index`].
    pub buckets: [u64; StallBucket::COUNT],
    /// Log2 occupancy histograms, row per [`OCC_STRUCTURES`] entry.
    pub occupancy: [[u64; OCC_BUCKETS]; OCC_STRUCTURES.len()],
}

impl Default for StallProfile {
    fn default() -> Self {
        StallProfile {
            buckets: [0; StallBucket::COUNT],
            occupancy: [[0; OCC_BUCKETS]; OCC_STRUCTURES.len()],
        }
    }
}

impl StallProfile {
    /// Attributes one cycle to `bucket`.
    pub fn tally(&mut self, bucket: StallBucket) {
        self.buckets[bucket.index()] += 1;
    }

    /// Records one cycle's occupancy sample for structure row `structure`.
    pub fn observe_occupancy(&mut self, structure: usize, occ: usize) {
        self.occupancy[structure][occ_bucket(occ)] += 1;
    }

    /// Cycles attributed to `bucket`.
    #[must_use]
    pub fn count(&self, bucket: StallBucket) -> u64 {
        self.buckets[bucket.index()]
    }

    /// Total attributed cycles — equals the run's measured cycle count by
    /// construction (exactly one tally per cycle).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of cycles classified [`StallBucket::Quiescent`]
    /// (0 when nothing was profiled).
    #[must_use]
    pub fn quiescent_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.count(StallBucket::Quiescent) as f64 / total as f64
    }

    /// Accumulates every stall bucket into `registry` under
    /// `rar_stall_<bucket>_cycles_total` (and occupancy rows under
    /// `rar_occ_<structure>_b<j>_cycles_total`), so a sweep session can
    /// aggregate cycle accounting across its cells. Must stay exhaustive
    /// over [`StallBucket::ALL`] — `cargo xtask lint` checks that every
    /// bucket reaches both exporters.
    pub fn record_into(&self, registry: &MetricsRegistry) {
        for bucket in StallBucket::ALL {
            registry
                .counter(&format!("rar_stall_{}_cycles_total", bucket.name()))
                .add(self.count(bucket));
        }
        for (row, structure) in OCC_STRUCTURES.iter().enumerate() {
            for (j, &n) in self.occupancy[row].iter().enumerate() {
                if n > 0 {
                    registry
                        .counter(&format!("rar_occ_{structure}_b{j}_cycles_total"))
                        .add(n);
                }
            }
        }
    }

    /// Merges another profile into this one (sweep-level aggregation).
    pub fn merge(&mut self, other: &StallProfile) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        for (ra, rb) in self.occupancy.iter_mut().zip(other.occupancy.iter()) {
            for (a, b) in ra.iter_mut().zip(rb.iter()) {
                *a += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_names_are_unique_snake_case() {
        let mut names: Vec<&str> = StallBucket::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), StallBucket::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StallBucket::COUNT, "duplicate bucket name");
        for name in names {
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn indices_match_all_order() {
        for (i, b) in StallBucket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }

    #[test]
    fn occ_bucket_is_log2_with_open_tail() {
        assert_eq!(occ_bucket(0), 0);
        assert_eq!(occ_bucket(1), 1);
        assert_eq!(occ_bucket(2), 2);
        assert_eq!(occ_bucket(3), 2);
        assert_eq!(occ_bucket(4), 3);
        assert_eq!(occ_bucket(192), 8);
        assert_eq!(occ_bucket(1 << 30), OCC_BUCKETS - 1);
    }

    #[test]
    fn tally_conserves_and_fraction_follows() {
        let mut p = StallProfile::default();
        for _ in 0..3 {
            p.tally(StallBucket::Retiring);
        }
        p.tally(StallBucket::Quiescent);
        assert_eq!(p.total(), 4);
        assert!((p.quiescent_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(StallProfile::default().quiescent_fraction(), 0.0);
    }

    #[test]
    fn record_into_covers_every_bucket() {
        let reg = MetricsRegistry::new();
        let mut p = StallProfile::default();
        for b in StallBucket::ALL {
            p.tally(b);
        }
        p.observe_occupancy(0, 100);
        p.record_into(&reg);
        p.record_into(&reg);
        for b in StallBucket::ALL {
            let name = format!("rar_stall_{}_cycles_total", b.name());
            assert_eq!(reg.counter(&name).get(), 2, "{name}");
        }
        assert_eq!(reg.counter("rar_occ_rob_b7_cycles_total").get(), 2);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = StallProfile::default();
        let mut b = StallProfile::default();
        a.tally(StallBucket::Exec);
        b.tally(StallBucket::Exec);
        b.tally(StallBucket::DramWait);
        b.observe_occupancy(4, 2);
        a.merge(&b);
        assert_eq!(a.count(StallBucket::Exec), 2);
        assert_eq!(a.count(StallBucket::DramWait), 1);
        assert_eq!(a.occupancy[4][2], 1);
        assert_eq!(a.total(), 3);
    }
}
