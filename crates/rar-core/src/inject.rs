//! Single-bit fault description and deterministic site sampling.
//!
//! A statistical fault-injection campaign strikes one bit of modeled
//! microarchitectural state per run — `(cycle, target, entry, bit)` — and
//! classifies the architectural outcome against a golden run (see the
//! `rar-inject` crate for the campaign machinery). This module defines the
//! *what*: the injectable structures ([`FaultTarget`]), the fault tuple
//! ([`PlannedFault`]), where a strike landed ([`FaultLanding`]), and a
//! deterministic xorshift-seeded sampler ([`SiteSampler`]) whose `k`-th
//! site is a pure function of `(seed, k)` — campaigns are therefore
//! reproducible bit-for-bit across thread counts and resumable without
//! replaying the generator.
//!
//! ## Fault semantics in a timing simulator
//!
//! The simulator carries no data values, so a "payload" bit flip cannot
//! literally corrupt a number. Instead payload strikes mark state
//! *poisoned* and the core propagates poison along true dependences
//! (register reads at issue, destination writes at completion); a poisoned
//! value that reaches an architecturally observable point — a load/store
//! address or a committed branch — perturbs the commit digest and is
//! classified SDC. "Control" strikes mutate real scheduler state (lost
//! issue-queue valid bits, completion-time corruption, load/store address
//! bits) and can genuinely wedge the machine, which the cycle-budget
//! watchdog classifies DUE. Strikes into unoccupied slots land
//! [`FaultLanding::Vacant`] and are always masked.

use crate::config::CoreConfig;
use rar_ace::bits::{
    FP_REG_BITS, INT_FU_BITS, INT_REG_BITS, IQ_ENTRY_BITS, LQ_ENTRY_BITS, ROB_ENTRY_BITS,
    SQ_ENTRY_BITS,
};
use rar_ace::Structure;
use rar_mem::MemConfig;

/// Per-entry SST bits: a 48-bit PC tag plus LRU metadata.
pub const SST_ENTRY_BITS: u64 = 48;
/// Per-way L1-D tag bits: tag + valid + LRU metadata.
pub const CACHE_TAG_BITS: u64 = 40;
/// Per-MSHR bits: line address + completion bookkeeping.
pub const MSHR_ENTRY_BITS: u64 = 64;

/// A microarchitectural structure that accepts bit-flip injections.
///
/// The first seven variants mirror [`rar_ace::Structure`] and are directly
/// comparable to ACE-estimated AVF; the last three (SST, L1-D tags, MSHRs)
/// are metadata structures outside the paper's Table III accounting,
/// injectable to confirm they are timing-only (ECC-equivalent) state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// Reorder-buffer entry bits.
    Rob,
    /// Issue-queue entry bits.
    Iq,
    /// Load-queue entry bits.
    Lq,
    /// Store-queue entry bits.
    Sq,
    /// Integer physical register bits.
    RfInt,
    /// Floating-point physical register bits.
    RfFp,
    /// Functional-unit pipeline latch bits.
    Fu,
    /// Stalling-slice-table PC tags.
    Sst,
    /// L1-D tag array.
    CacheTag,
    /// Miss-status holding registers.
    Mshr,
}

impl FaultTarget {
    /// Every injectable target, ACE-comparable structures first.
    pub const ALL: [FaultTarget; 10] = [
        FaultTarget::Rob,
        FaultTarget::Iq,
        FaultTarget::Lq,
        FaultTarget::Sq,
        FaultTarget::RfInt,
        FaultTarget::RfFp,
        FaultTarget::Fu,
        FaultTarget::Sst,
        FaultTarget::CacheTag,
        FaultTarget::Mshr,
    ];

    /// The targets with an ACE/AVF counterpart (Table III structures).
    pub const ACE: [FaultTarget; 7] = [
        FaultTarget::Rob,
        FaultTarget::Iq,
        FaultTarget::Lq,
        FaultTarget::Sq,
        FaultTarget::RfInt,
        FaultTarget::RfFp,
        FaultTarget::Fu,
    ];

    /// Stable lower-case name (used in journals and tally files).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FaultTarget::Rob => "rob",
            FaultTarget::Iq => "iq",
            FaultTarget::Lq => "lq",
            FaultTarget::Sq => "sq",
            FaultTarget::RfInt => "rf_int",
            FaultTarget::RfFp => "rf_fp",
            FaultTarget::Fu => "fu",
            FaultTarget::Sst => "sst",
            FaultTarget::CacheTag => "cache_tag",
            FaultTarget::Mshr => "mshr",
        }
    }

    /// Parses a [`FaultTarget::name`] back into the target.
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultTarget> {
        FaultTarget::ALL.into_iter().find(|t| t.name() == s)
    }

    /// The ACE structure this target corresponds to, when it has one.
    #[must_use]
    pub const fn structure(self) -> Option<Structure> {
        match self {
            FaultTarget::Rob => Some(Structure::Rob),
            FaultTarget::Iq => Some(Structure::Iq),
            FaultTarget::Lq => Some(Structure::Lq),
            FaultTarget::Sq => Some(Structure::Sq),
            FaultTarget::RfInt => Some(Structure::RfInt),
            FaultTarget::RfFp => Some(Structure::RfFp),
            FaultTarget::Fu => Some(Structure::Fu),
            FaultTarget::Sst | FaultTarget::CacheTag | FaultTarget::Mshr => None,
        }
    }

    /// Per-entry bit width of the target. Every variant MUST appear here —
    /// `cargo xtask lint` enforces it so a new injectable structure cannot
    /// silently default to an arbitrary width.
    #[must_use]
    pub const fn per_entry_bits(self) -> u64 {
        match self {
            FaultTarget::Rob => ROB_ENTRY_BITS,
            FaultTarget::Iq => IQ_ENTRY_BITS,
            FaultTarget::Lq => LQ_ENTRY_BITS,
            FaultTarget::Sq => SQ_ENTRY_BITS,
            FaultTarget::RfInt => INT_REG_BITS,
            FaultTarget::RfFp => FP_REG_BITS,
            FaultTarget::Fu => INT_FU_BITS,
            FaultTarget::Sst => SST_ENTRY_BITS,
            FaultTarget::CacheTag => CACHE_TAG_BITS,
            FaultTarget::Mshr => MSHR_ENTRY_BITS,
        }
    }

    /// Number of addressable entries of this target under a configuration.
    #[must_use]
    pub fn entries(self, core: &CoreConfig, mem: &MemConfig) -> u64 {
        match self {
            FaultTarget::Rob => core.rob_size as u64,
            FaultTarget::Iq => core.iq_size as u64,
            FaultTarget::Lq => core.lq_size as u64,
            FaultTarget::Sq => core.sq_size as u64,
            FaultTarget::RfInt => core.int_regs as u64,
            FaultTarget::RfFp => core.fp_regs as u64,
            FaultTarget::Fu => (core.fu.int_units() + core.fu.fp_units()) as u64,
            FaultTarget::Sst => core.sst_size as u64,
            FaultTarget::CacheTag => (mem.l1d.num_sets() * mem.l1d.assoc) as u64,
            FaultTarget::Mshr => mem.mshrs as u64,
        }
    }

    /// Total bit capacity (`entries * per_entry_bits`) under a config.
    #[must_use]
    pub fn capacity_bits(self, core: &CoreConfig, mem: &MemConfig) -> u64 {
        self.entries(core, mem) * self.per_entry_bits()
    }
}

/// One planned single-bit strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Absolute core cycle (`Core::now`) at which the bit flips.
    pub cycle: u64,
    /// Structure struck.
    pub target: FaultTarget,
    /// Entry index within the structure (modulo-reduced by the applier
    /// when the structure is sparsely occupied).
    pub entry: u64,
    /// Bit index within the entry, `< per_entry_bits()`.
    pub bit: u64,
}

/// Where a strike physically landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLanding {
    /// The addressed slot held no live state; the flip is masked by
    /// construction.
    Vacant,
    /// A value bit: the slot's data is now poisoned and propagates along
    /// true dependences.
    Payload,
    /// A control/metadata bit: real scheduler or address state mutated.
    Control,
}

impl FaultLanding {
    /// Stable lower-case name for journals.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FaultLanding::Vacant => "vacant",
            FaultLanding::Payload => "payload",
            FaultLanding::Control => "control",
        }
    }
}

/// What the core observed of an armed fault (read back after the run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// `None` until the strike cycle is reached.
    pub landing: Option<FaultLanding>,
    /// Faulted in-flight entries removed by squash/flush (the fault was
    /// architecturally erased — RAR's mechanism at work).
    pub squashed_faulty: u64,
    /// Commits that retired poisoned state (observable or latent).
    pub corrupt_commits: u64,
    /// For register-file strikes: whether the static bit-liveness
    /// analysis predicted the struck bit dead (`None` when the stratum is
    /// unresolvable — a non-RF target, a vacant slot, or a wrong-path /
    /// beyond-horizon writer). The injection campaign stratifies outcomes
    /// on this to cross-validate the analysis.
    pub predicted_dead: Option<bool>,
}

/// Plans the `k`-th injection site of a campaign.
///
/// Implementations MUST be pure in `k`: the same `(sampler, k)` always
/// yields the same [`PlannedFault`], independent of call order — this is
/// what makes campaigns deterministic across thread counts and resumable.
pub trait FaultInjector {
    /// The `k`-th planned fault.
    fn plan(&self, k: u64) -> PlannedFault;
}

/// `xorshift64*` — the campaign's deterministic bit mixer.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Seeds the generator; a zero seed is remapped to a fixed nonzero
    /// constant (xorshift has an all-zero fixed point).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Deterministic site sampler: uniform over the configured targets'
/// aggregate bit capacity and uniform over a cycle window, so the
/// per-structure sample density matches the per-structure bit capacity —
/// exactly the weighting under which measured vulnerability is comparable
/// to ACE-estimated AVF.
#[derive(Debug, Clone)]
pub struct SiteSampler {
    seed: u64,
    cycle_lo: u64,
    cycle_hi: u64,
    /// `(target, entries, capacity_bits)` per injectable target.
    domain: Vec<(FaultTarget, u64, u64)>,
    total_bits: u64,
}

impl SiteSampler {
    /// Samples over the seven ACE-comparable structures (the AVF
    /// cross-validation campaign).
    ///
    /// # Panics
    ///
    /// Panics if the cycle window `[lo, hi)` is empty.
    #[must_use]
    pub fn ace(seed: u64, cycle_window: (u64, u64), core: &CoreConfig, mem: &MemConfig) -> Self {
        Self::with_targets(seed, cycle_window, &FaultTarget::ACE, core, mem)
    }

    /// Samples over every injectable target, metadata structures included.
    ///
    /// # Panics
    ///
    /// Panics if the cycle window `[lo, hi)` is empty.
    #[must_use]
    pub fn all(seed: u64, cycle_window: (u64, u64), core: &CoreConfig, mem: &MemConfig) -> Self {
        Self::with_targets(seed, cycle_window, &FaultTarget::ALL, core, mem)
    }

    /// Samples over an explicit target set.
    ///
    /// # Panics
    ///
    /// Panics if the cycle window is empty or every target has zero
    /// capacity.
    #[must_use]
    pub fn with_targets(
        seed: u64,
        (cycle_lo, cycle_hi): (u64, u64),
        targets: &[FaultTarget],
        core: &CoreConfig,
        mem: &MemConfig,
    ) -> Self {
        assert!(cycle_lo < cycle_hi, "empty strike window");
        let domain: Vec<(FaultTarget, u64, u64)> = targets
            .iter()
            .map(|&t| (t, t.entries(core, mem), t.capacity_bits(core, mem)))
            .filter(|&(_, _, cap)| cap > 0)
            .collect();
        let total_bits = domain.iter().map(|&(_, _, cap)| cap).sum();
        assert!(total_bits > 0, "no injectable capacity");
        SiteSampler {
            seed,
            cycle_lo,
            cycle_hi,
            domain,
            total_bits,
        }
    }

    /// The sampled targets and their entry counts.
    #[must_use]
    pub fn domain(&self) -> Vec<(FaultTarget, u64)> {
        self.domain.iter().map(|&(t, e, _)| (t, e)).collect()
    }
}

impl FaultInjector for SiteSampler {
    fn plan(&self, k: u64) -> PlannedFault {
        // Decorrelate k before seeding so consecutive sites share no
        // xorshift state; the whole site is then a pure function of
        // (seed, k).
        let mut rng =
            XorShift64Star::new(self.seed ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
        let cycle = self.cycle_lo + rng.below(self.cycle_hi - self.cycle_lo);
        let mut pick = rng.below(self.total_bits);
        let mut chosen = self.domain[0];
        for &(t, entries, cap) in &self.domain {
            if pick < cap {
                chosen = (t, entries, cap);
                break;
            }
            pick -= cap;
        }
        let (target, entries, _) = chosen;
        PlannedFault {
            cycle,
            target,
            entry: rng.below(entries),
            bit: rng.below(target.per_entry_bits()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> SiteSampler {
        SiteSampler::ace(
            42,
            (100, 10_000),
            &CoreConfig::baseline(),
            &MemConfig::baseline(),
        )
    }

    #[test]
    fn plan_is_pure_in_k() {
        let s = sampler();
        for k in [0u64, 1, 7, 1_000, u64::MAX / 2] {
            assert_eq!(s.plan(k), s.plan(k));
        }
        let again = sampler();
        assert_eq!(s.plan(123), again.plan(123));
    }

    #[test]
    fn sites_stay_in_domain() {
        let core = CoreConfig::baseline();
        let mem = MemConfig::baseline();
        let s = SiteSampler::all(7, (50, 500), &core, &mem);
        for k in 0..2_000 {
            let f = s.plan(k);
            assert!((50..500).contains(&f.cycle));
            assert!(f.entry < f.target.entries(&core, &mem));
            assert!(f.bit < f.target.per_entry_bits());
        }
    }

    #[test]
    fn sampling_density_tracks_capacity() {
        let core = CoreConfig::baseline();
        let mem = MemConfig::baseline();
        let s = SiteSampler::ace(99, (0, 1000), &core, &mem);
        let mut rob = 0u64;
        let mut fu = 0u64;
        let n = 20_000;
        for k in 0..n {
            match s.plan(k).target {
                FaultTarget::Rob => rob += 1,
                FaultTarget::Fu => fu += 1,
                _ => {}
            }
        }
        // ROB capacity (192*120 bits) dwarfs the FU latches (13*64).
        assert!(rob > fu * 5, "rob={rob} fu={fu}");
    }

    #[test]
    fn every_target_has_positive_capacity() {
        let core = CoreConfig::baseline();
        let mem = MemConfig::baseline();
        for t in FaultTarget::ALL {
            assert!(t.capacity_bits(&core, &mem) > 0, "{}", t.name());
            assert_eq!(FaultTarget::parse(t.name()), Some(t));
        }
    }
}
