//! Core configuration (Tables I and II of the paper).

use rar_ace::{EntryBits, StructureCapacities};
use rar_isa::UopKind;
use rar_verify::ConfigError;

/// Functional-unit pool (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Integer adders (also execute branches and address generation).
    pub int_add: usize,
    /// Integer multipliers.
    pub int_mul: usize,
    /// Integer dividers (unpipelined).
    pub int_div: usize,
    /// Floating-point adders.
    pub fp_add: usize,
    /// Floating-point multipliers.
    pub fp_mul: usize,
    /// Floating-point dividers (unpipelined).
    pub fp_div: usize,
    /// Load/store ports (cache access issue bandwidth).
    pub mem_ports: usize,
}

impl FuConfig {
    /// The paper's Table II pool.
    #[must_use]
    pub const fn baseline() -> Self {
        FuConfig {
            int_add: 3,
            int_mul: 1,
            int_div: 1,
            fp_add: 1,
            fp_mul: 1,
            fp_div: 1,
            mem_ports: 2,
        }
    }

    /// Total integer-width units (for ACE capacity).
    #[must_use]
    pub const fn int_units(&self) -> usize {
        self.int_add + self.int_mul + self.int_div
    }

    /// Total floating-point-width units (for ACE capacity).
    #[must_use]
    pub const fn fp_units(&self) -> usize {
        self.fp_add + self.fp_mul + self.fp_div
    }
}

/// Execution latency in cycles of each micro-op kind (Table II).
#[must_use]
pub const fn exec_latency(kind: UopKind) -> u64 {
    match kind {
        UopKind::IntAlu | UopKind::Nop => 1,
        UopKind::IntMul => 3,
        UopKind::IntDiv => 18,
        UopKind::FpAdd => 3,
        UopKind::FpMul => 5,
        UopKind::FpDiv => 6,
        // Address generation; cache latency is added by the hierarchy.
        UopKind::Load | UopKind::Store => 1,
        UopKind::Branch => 1,
    }
}

/// Out-of-order core parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-queue entries.
    pub iq_size: usize,
    /// Load-queue entries.
    pub lq_size: usize,
    /// Store-queue entries.
    pub sq_size: usize,
    /// Integer physical registers.
    pub int_regs: usize,
    /// Floating-point physical registers.
    pub fp_regs: usize,
    /// Pipeline width (fetch/dispatch/issue/commit per cycle).
    pub width: usize,
    /// Front-end depth in stages: the redirect/refill penalty.
    pub frontend_depth: u64,
    /// Functional units.
    pub fu: FuConfig,
    /// Stalling-slice-table entries (PRE).
    pub sst_size: usize,
    /// Precise-register-deallocation-queue entries (PRE).
    pub prdq_size: usize,
    /// RAR's 4-bit countdown threshold: a load resident at the ROB head
    /// for this many cycles is assumed to be an LLC miss.
    pub runahead_timer: u64,
    /// TR's filter: only trigger runahead for loads issued to memory less
    /// than this many cycles before the full-window stall.
    pub tr_trigger_window: u64,
    /// Minimum remaining miss latency for entering runahead at all.
    pub min_runahead_benefit: u64,
    /// Maximum micro-ops the runahead engine may run ahead of dispatch.
    pub max_runahead_depth: u64,
    /// Dispatch-throttling occupancy bound (fraction of the ROB) for the
    /// THROTTLE extension baseline.
    pub throttle_occupancy_bound: f64,
    /// Dispatch width while over the bound (0 = stall dispatch).
    pub throttle_width: usize,
    /// Model wrong-path execution: dispatch synthetic micro-ops past a
    /// mispredicted branch until it resolves (they contend for back-end
    /// resources and pollute caches, then are squashed). Off by default —
    /// the paper-calibrated numbers treat wrong-path fetch as bubbles;
    /// see the `ablation_wrong_path` bench for its effect.
    pub model_wrong_path: bool,
}

impl CoreConfig {
    /// The baseline core of Table II (Core-2-like; ROB 192, IQ 92).
    #[must_use]
    pub fn baseline() -> Self {
        CoreConfig {
            rob_size: 192,
            iq_size: 92,
            lq_size: 64,
            sq_size: 64,
            int_regs: 168,
            fp_regs: 168,
            width: 4,
            frontend_depth: 8,
            fu: FuConfig::baseline(),
            sst_size: 128,
            prdq_size: 192,
            runahead_timer: 15,
            tr_trigger_window: 250,
            min_runahead_benefit: 30,
            max_runahead_depth: 2048,
            throttle_occupancy_bound: 0.75,
            throttle_width: 0,
            model_wrong_path: false,
        }
    }

    /// Table I Core-1 (Nehalem-like, 128-entry ROB).
    #[must_use]
    pub fn core1() -> Self {
        CoreConfig {
            rob_size: 128,
            iq_size: 36,
            lq_size: 48,
            sq_size: 32,
            int_regs: 120,
            fp_regs: 120,
            ..CoreConfig::baseline()
        }
    }

    /// Table I Core-2 (Haswell-like, 192-entry ROB) — the baseline.
    #[must_use]
    pub fn core2() -> Self {
        CoreConfig {
            rob_size: 192,
            iq_size: 92,
            lq_size: 64,
            sq_size: 64,
            int_regs: 168,
            fp_regs: 168,
            ..CoreConfig::baseline()
        }
    }

    /// Table I Core-3 (Skylake-like, 224-entry ROB).
    #[must_use]
    pub fn core3() -> Self {
        CoreConfig {
            rob_size: 224,
            iq_size: 97,
            lq_size: 64,
            sq_size: 60,
            int_regs: 180,
            fp_regs: 180,
            ..CoreConfig::baseline()
        }
    }

    /// Table I Core-4 (Ice-Lake-like, 352-entry ROB).
    #[must_use]
    pub fn core4() -> Self {
        CoreConfig {
            rob_size: 352,
            iq_size: 128,
            lq_size: 128,
            sq_size: 72,
            int_regs: 256,
            fp_regs: 256,
            ..CoreConfig::baseline()
        }
    }

    /// All four Table I configurations, smallest first.
    #[must_use]
    pub fn table_i() -> [CoreConfig; 4] {
        [
            CoreConfig::core1(),
            CoreConfig::core2(),
            CoreConfig::core3(),
            CoreConfig::core4(),
        ]
    }

    /// An extension beyond Table I: an Apple-M1-class core with the
    /// 600-entry ROB the paper's Section II-B cites as the scaling
    /// endpoint ("Apple's recently released M1 core features a huge
    /// 600-entry ROB"). Back-end structures scaled proportionally.
    #[must_use]
    pub fn core5_m1() -> Self {
        CoreConfig {
            rob_size: 600,
            iq_size: 160,
            lq_size: 192,
            sq_size: 128,
            int_regs: 384,
            fp_regs: 384,
            width: 8,
            ..CoreConfig::baseline()
        }
    }

    /// Structure bit capacities for ACE metrics (`N` in Equation 2).
    #[must_use]
    pub fn capacities(&self) -> StructureCapacities {
        StructureCapacities::from_entries(
            &EntryBits::table_iii(),
            self.rob_size as u64,
            self.iq_size as u64,
            self.lq_size as u64,
            self.sq_size as u64,
            self.int_regs as u64,
            self.fp_regs as u64,
            self.fu.int_units() as u64,
            self.fu.fp_units() as u64,
        )
    }

    /// Sanity checks on the configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] naming the first violated
    /// constraint, so sweep drivers can reject a bad configuration before
    /// spending cycles on it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("rob_size", self.rob_size),
            ("iq_size", self.iq_size),
            ("lq_size", self.lq_size),
            ("sq_size", self.sq_size),
        ] {
            if value == 0 {
                return Err(ConfigError::core(field, "queue size must be nonzero"));
            }
        }
        if self.width == 0 {
            return Err(ConfigError::core("width", "pipeline width must be nonzero"));
        }
        if self.int_regs < 32 + self.width {
            return Err(ConfigError::core(
                "int_regs",
                format!(
                    "{} integer physical registers cannot cover 32 architectural \
                     plus {} rename slots",
                    self.int_regs, self.width
                ),
            ));
        }
        if self.fp_regs < 32 + self.width {
            return Err(ConfigError::core(
                "fp_regs",
                format!(
                    "{} floating-point physical registers cannot cover 32 \
                     architectural plus {} rename slots",
                    self.fp_regs, self.width
                ),
            ));
        }
        if !self.throttle_occupancy_bound.is_finite()
            || !(0.0..=1.0).contains(&self.throttle_occupancy_bound)
        {
            return Err(ConfigError::core(
                "throttle_occupancy_bound",
                format!(
                    "must be a fraction of the ROB in [0, 1], got {}",
                    self.throttle_occupancy_bound
                ),
            ));
        }
        if self.throttle_width > self.width {
            return Err(ConfigError::core(
                "throttle_width",
                format!(
                    "throttled dispatch width {} exceeds pipeline width {}",
                    self.throttle_width, self.width
                ),
            ));
        }
        Ok(())
    }

    /// Appends this configuration's canonical key=value form to `out`:
    /// one line per field, in declaration order, independent of how the
    /// value was constructed. Floats are rendered as IEEE-754 bit
    /// patterns so the form is exact. `SimConfig::fingerprint` in
    /// `rar-sim` hashes this text; extending the struct *must* extend
    /// this list (append-only), which changes existing fingerprints and
    /// thereby invalidates stale cache entries — exactly the safe
    /// failure mode.
    pub fn write_canonical(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "core.rob_size={}\ncore.iq_size={}\ncore.lq_size={}\ncore.sq_size={}\n\
             core.int_regs={}\ncore.fp_regs={}\ncore.width={}\ncore.frontend_depth={}\n",
            self.rob_size,
            self.iq_size,
            self.lq_size,
            self.sq_size,
            self.int_regs,
            self.fp_regs,
            self.width,
            self.frontend_depth,
        );
        let _ = write!(
            out,
            "core.fu.int_add={}\ncore.fu.int_mul={}\ncore.fu.int_div={}\ncore.fu.fp_add={}\n\
             core.fu.fp_mul={}\ncore.fu.fp_div={}\ncore.fu.mem_ports={}\n",
            self.fu.int_add,
            self.fu.int_mul,
            self.fu.int_div,
            self.fu.fp_add,
            self.fu.fp_mul,
            self.fu.fp_div,
            self.fu.mem_ports,
        );
        let _ = write!(
            out,
            "core.sst_size={}\ncore.prdq_size={}\ncore.runahead_timer={}\n\
             core.tr_trigger_window={}\ncore.min_runahead_benefit={}\ncore.max_runahead_depth={}\n\
             core.throttle_occupancy_bound={:#018x}\ncore.throttle_width={}\n\
             core.model_wrong_path={}\n",
            self.sst_size,
            self.prdq_size,
            self.runahead_timer,
            self.tr_trigger_window,
            self.min_runahead_benefit,
            self.max_runahead_depth,
            self.throttle_occupancy_bound.to_bits(),
            self.throttle_width,
            self.model_wrong_path,
        );
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = CoreConfig::baseline();
        assert_eq!(c.rob_size, 192);
        assert_eq!(c.iq_size, 92);
        assert_eq!(c.lq_size, 64);
        assert_eq!(c.sq_size, 64);
        assert_eq!(c.int_regs, 168);
        assert_eq!(c.width, 4);
        assert_eq!(c.fu.int_add, 3);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn table_i_sizes() {
        let [c1, c2, c3, c4] = CoreConfig::table_i();
        assert_eq!(
            [c1.rob_size, c2.rob_size, c3.rob_size, c4.rob_size],
            [128, 192, 224, 352]
        );
        assert_eq!(
            [c1.iq_size, c2.iq_size, c3.iq_size, c4.iq_size],
            [36, 92, 97, 128]
        );
        for c in CoreConfig::table_i() {
            assert_eq!(c.validate(), Ok(()));
        }
    }

    #[test]
    fn m1_class_core_is_largest() {
        let m1 = CoreConfig::core5_m1();
        assert_eq!(m1.rob_size, 600);
        assert_eq!(m1.validate(), Ok(()));
        assert!(m1.capacities().total_bits() > CoreConfig::core4().capacities().total_bits());
    }

    #[test]
    fn capacities_grow_with_config() {
        let caps: Vec<u64> = CoreConfig::table_i()
            .iter()
            .map(|c| c.capacities().total_bits())
            .collect();
        assert!(caps.windows(2).all(|w| w[0] < w[1]), "{caps:?}");
    }

    #[test]
    fn latencies_match_table2() {
        assert_eq!(exec_latency(UopKind::IntAlu), 1);
        assert_eq!(exec_latency(UopKind::IntMul), 3);
        assert_eq!(exec_latency(UopKind::IntDiv), 18);
        assert_eq!(exec_latency(UopKind::FpAdd), 3);
        assert_eq!(exec_latency(UopKind::FpMul), 5);
        assert_eq!(exec_latency(UopKind::FpDiv), 6);
    }

    #[test]
    fn validate_catches_degenerate() {
        let mut c = CoreConfig::baseline();
        c.int_regs = 16;
        assert_eq!(c.validate().unwrap_err().field(), "int_regs");
        let mut c = CoreConfig::baseline();
        c.rob_size = 0;
        assert_eq!(c.validate().unwrap_err().field(), "rob_size");
        let mut c = CoreConfig::baseline();
        c.throttle_occupancy_bound = 1.5;
        assert_eq!(
            c.validate().unwrap_err().field(),
            "throttle_occupancy_bound"
        );
        let mut c = CoreConfig::baseline();
        c.throttle_width = c.width + 1;
        assert_eq!(c.validate().unwrap_err().field(), "throttle_width");
    }
}
