//! The evaluated microarchitecture techniques and the runahead design
//! space (Table IV).

use std::fmt;

/// A microarchitecture technique from the paper's evaluation (Section V
/// plus the Table IV design-space variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Baseline out-of-order core.
    Ooo,
    /// Weaver et al.: flush the pipeline when a memory access blocks the
    /// ROB head; refill when it returns. No runahead.
    Flush,
    /// Traditional runahead (Mutlu et al.): full-ROB-stall trigger,
    /// executes the whole future stream, flushes at exit.
    Tr,
    /// Traditional runahead with the early (blocked-head) trigger.
    TrEarly,
    /// Precise Runahead Execution: full-ROB-stall trigger, lean slice
    /// execution, keeps the ROB (no flush at exit).
    Pre,
    /// PRE with the early trigger (still no flush).
    PreEarly,
    /// This paper: PRE plus flush-at-exit, late (full-ROB) trigger.
    RarLate,
    /// This paper: PRE plus flush-at-exit plus early trigger —
    /// Reliability-Aware Runahead.
    Rar,
    /// Dispatch throttling (Soundararajan et al., Section VI-C): when
    /// back-end occupancy exceeds a bound while a miss blocks commit,
    /// dispatch is narrowed to one micro-op per cycle. Bounds vulnerable
    /// state accumulation at a direct performance cost. Implemented as an
    /// extension baseline; it does not appear in the paper's figures.
    Throttle,
    /// Runahead buffer (Hashemi & Patt, MICRO 2015; Section VI-D related
    /// work): on a full-window stall, replay the miss's dependence chain
    /// from a small buffer instead of fetching the whole future stream —
    /// non-slice micro-ops cost no front-end bandwidth at all. ROB kept
    /// at exit, like PRE. Extension; not in the paper's figures.
    Rab,
    /// Continuous runahead (Hashemi, Mutlu & Patt, MICRO 2016; Section
    /// VI-D related work): a background engine keeps pre-executing
    /// stalling slices whenever an LLC miss is outstanding, *without*
    /// entering a runahead mode or stopping dispatch. Extension; not in
    /// the paper's figures.
    Cre,
    /// Vector runahead (Naithani, Ainsworth, Jones & Eeckhout, ISCA 2021;
    /// cited as \[49\]): vectorizes stalling slices so one issue slot
    /// pre-executes several loop iterations' worth of chain work,
    /// multiplying prefetch generation bandwidth. Modelled as 4x slice
    /// throughput with buffered (fetch-free) skipping; triggers and
    /// flushes like traditional runahead. Extension; not in the paper's
    /// figures.
    Vr,
}

/// The Table IV feature axes of a runahead variant (plus the extension
/// `buffered` axis for the runahead-buffer variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunaheadFeatures {
    /// Trigger as soon as a miss blocks commit (vs. full-ROB stall).
    pub early: bool,
    /// Flush the back-end when exiting runahead mode.
    pub flush_at_exit: bool,
    /// Execute only stalling slices (PRE-style) instead of everything.
    pub lean: bool,
    /// Replay slices from a buffer: non-slice micro-ops consume no fetch
    /// bandwidth during runahead (runahead-buffer extension).
    pub buffered: bool,
    /// Vectorize slice execution: one issue slot covers several
    /// iterations of a chain (vector-runahead extension).
    pub vector: bool,
}

impl Technique {
    /// Every technique of the paper's evaluation, in reporting order.
    pub const ALL: [Technique; 8] = [
        Technique::Ooo,
        Technique::Flush,
        Technique::Tr,
        Technique::TrEarly,
        Technique::Pre,
        Technique::PreEarly,
        Technique::RarLate,
        Technique::Rar,
    ];

    /// The paper's techniques plus this workspace's extension baselines.
    pub const EXTENDED: [Technique; 12] = [
        Technique::Ooo,
        Technique::Flush,
        Technique::Tr,
        Technique::TrEarly,
        Technique::Pre,
        Technique::PreEarly,
        Technique::RarLate,
        Technique::Rar,
        Technique::Throttle,
        Technique::Rab,
        Technique::Cre,
        Technique::Vr,
    ];

    /// The six runahead variants of Table IV.
    pub const RUNAHEAD_VARIANTS: [Technique; 6] = [
        Technique::Tr,
        Technique::TrEarly,
        Technique::Pre,
        Technique::PreEarly,
        Technique::RarLate,
        Technique::Rar,
    ];

    /// True if the technique speculates with runahead execution.
    #[must_use]
    pub const fn is_runahead(self) -> bool {
        !matches!(
            self,
            Technique::Ooo | Technique::Flush | Technique::Throttle | Technique::Cre
        )
    }

    /// The extension variants implemented beyond the paper's evaluation.
    pub const EXTENSIONS: [Technique; 4] = [
        Technique::Throttle,
        Technique::Rab,
        Technique::Cre,
        Technique::Vr,
    ];

    /// Table IV feature set; `None` for non-runahead techniques.
    #[must_use]
    pub const fn features(self) -> Option<RunaheadFeatures> {
        match self {
            Technique::Ooo | Technique::Flush | Technique::Throttle | Technique::Cre => None,
            Technique::Rab => Some(RunaheadFeatures {
                early: false,
                flush_at_exit: false,
                lean: true,
                buffered: true,
                vector: false,
            }),
            Technique::Vr => Some(RunaheadFeatures {
                early: false,
                flush_at_exit: true,
                lean: true,
                buffered: true,
                vector: true,
            }),
            Technique::Tr => Some(RunaheadFeatures {
                early: false,
                flush_at_exit: true,
                lean: false,
                buffered: false,
                vector: false,
            }),
            Technique::TrEarly => Some(RunaheadFeatures {
                early: true,
                flush_at_exit: true,
                lean: false,
                buffered: false,
                vector: false,
            }),
            Technique::Pre => Some(RunaheadFeatures {
                early: false,
                flush_at_exit: false,
                lean: true,
                buffered: false,
                vector: false,
            }),
            Technique::PreEarly => Some(RunaheadFeatures {
                early: true,
                flush_at_exit: false,
                lean: true,
                buffered: false,
                vector: false,
            }),
            Technique::RarLate => Some(RunaheadFeatures {
                early: false,
                flush_at_exit: true,
                lean: true,
                buffered: false,
                vector: false,
            }),
            Technique::Rar => Some(RunaheadFeatures {
                early: true,
                flush_at_exit: true,
                lean: true,
                buffered: false,
                vector: false,
            }),
        }
    }

    /// Parses a paper-style name (case-insensitive): `ooo`, `flush`, `tr`,
    /// `tr-early`, `pre`, `pre-early`, `rar-late`, `rar`.
    #[must_use]
    pub fn parse(name: &str) -> Option<Technique> {
        Some(match name.to_ascii_lowercase().as_str() {
            "ooo" | "baseline" => Technique::Ooo,
            "flush" => Technique::Flush,
            "tr" => Technique::Tr,
            "tr-early" | "tr_early" => Technique::TrEarly,
            "pre" => Technique::Pre,
            "pre-early" | "pre_early" => Technique::PreEarly,
            "rar-late" | "rar_late" => Technique::RarLate,
            "rar" => Technique::Rar,
            "throttle" => Technique::Throttle,
            "rab" | "runahead-buffer" => Technique::Rab,
            "cre" | "continuous" => Technique::Cre,
            "vr" | "vector" => Technique::Vr,
            _ => return None,
        })
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technique::Ooo => "OoO",
            Technique::Flush => "FLUSH",
            Technique::Tr => "TR",
            Technique::TrEarly => "TR-EARLY",
            Technique::Pre => "PRE",
            Technique::PreEarly => "PRE-EARLY",
            Technique::RarLate => "RAR-LATE",
            Technique::Rar => "RAR",
            Technique::Throttle => "THROTTLE",
            Technique::Rab => "RAB",
            Technique::Cre => "CRE",
            Technique::Vr => "VR",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_matrix() {
        // Exactly the checkmarks of Table IV.
        let f = |t: Technique| t.features().unwrap();
        let fx = |early, flush_at_exit, lean| RunaheadFeatures {
            early,
            flush_at_exit,
            lean,
            buffered: false,
            vector: false,
        };
        assert_eq!(f(Technique::Tr), fx(false, true, false));
        assert_eq!(f(Technique::TrEarly), fx(true, true, false));
        assert_eq!(f(Technique::Pre), fx(false, false, true));
        assert_eq!(f(Technique::PreEarly), fx(true, false, true));
        assert_eq!(f(Technique::RarLate), fx(false, true, true));
        assert_eq!(f(Technique::Rar), fx(true, true, true));
        assert!(f(Technique::Rab).buffered);
        assert!(f(Technique::Vr).vector && f(Technique::Vr).flush_at_exit);
        assert!(Technique::Ooo.features().is_none());
        assert!(Technique::Flush.features().is_none());
    }

    #[test]
    fn parse_roundtrip() {
        for t in Technique::EXTENDED {
            assert_eq!(Technique::parse(&t.to_string()), Some(t));
        }
        assert_eq!(Technique::parse("nonsense"), None);
    }

    #[test]
    fn runahead_predicate() {
        assert!(!Technique::Ooo.is_runahead());
        assert!(!Technique::Flush.is_runahead());
        assert!(!Technique::Throttle.is_runahead());
        assert!(Technique::Throttle.features().is_none());
        assert!(!Technique::Cre.is_runahead(), "CRE has no runahead *mode*");
        assert!(Technique::Cre.features().is_none());
        for t in Technique::RUNAHEAD_VARIANTS {
            assert!(t.is_runahead());
        }
    }
}
