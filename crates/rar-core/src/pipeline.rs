//! The cycle-level out-of-order core with every evaluated technique.
//!
//! One [`Core`] simulates a single-threaded OoO pipeline driven by a
//! [`UopSource`]: per cycle it commits, tracks blocking misses (opening
//! the ACE stall windows, arming the runahead countdown timer, firing
//! FLUSH), issues from the issue queue, advances the runahead engine when
//! in runahead mode, and dispatches/renames new micro-ops otherwise.
//!
//! ## Modelling notes (deviations from RTL, shared by all techniques)
//!
//! - **Wrong-path instructions are modelled as fetch bubbles**, not as
//!   dispatched micro-ops: on a mispredicted branch, dispatch stops until
//!   the branch resolves, then pays the front-end redirect penalty.
//!   Wrong-path state is un-ACE by definition (Section IV-A), so this does
//!   not change the reliability accounting; it slightly understates
//!   wrong-path resource contention for every technique equally. The key
//!   consequence the paper relies on — the ROB *not* filling behind a
//!   mispredicted branch in the shadow of a miss — is captured.
//! - **Store-to-load forwarding is not modelled**: the synthetic workloads
//!   keep store and load regions disjoint, so forwarding would never fire.
//! - **Runahead follows the correct-path trace**: real runahead diverges
//!   on mispredicted branches past an INV source. This favours all
//!   runahead variants equally.

use crate::config::{exec_latency, CoreConfig};
use crate::fu::FuPool;
use crate::inject::{FaultLanding, FaultReport, FaultTarget, PlannedFault};
use crate::regfile::{PhysReg, PhysRegFile, Rat};
use crate::rob::{Entry, Rob};
use crate::runahead::{InvTracker, Mode, RaState};
use crate::sst::{Prdq, Sst};
use crate::stall::{StallBucket, StallProfile};
use crate::stats::CoreStats;
use crate::technique::{RunaheadFeatures, Technique};
use rar_ace::bits::{
    FP_FU_BITS, INT_FU_BITS, IQ_ENTRY_BITS, LQ_ENTRY_BITS, ROB_ENTRY_BITS, SQ_ENTRY_BITS,
};
use rar_ace::{AceCounter, ReliabilityReport, StallKind, Structure};
use rar_frontend::BranchPredictor;
#[cfg(test)]
use rar_isa::Uop;
use rar_isa::{cache_line, ArchReg, RegClass, UopKind, UopSource};
use rar_mem::{AccessKind, HitLevel, MemConfig, MemStall, MemoryHierarchy};
use rar_trace::{NullSink, RunaheadTrigger, SampleRow, TraceEvent, TraceSink};
use rar_verify::AceRefinement;

/// The simulated core.
///
/// # Examples
///
/// ```
/// use rar_core::{Core, CoreConfig, Technique};
/// use rar_mem::MemConfig;
/// use rar_isa::{TraceWindow, Uop, UopKind, ArchReg};
///
/// let stream = (0u64..).map(|i| {
///     Uop::alu(0x1000 + (i % 64) * 4, UopKind::IntAlu)
///         .with_dest(ArchReg::int((i % 8) as u8))
/// });
/// let mut core = Core::new(
///     CoreConfig::baseline(),
///     MemConfig::baseline(),
///     Technique::Ooo,
///     TraceWindow::new(stream),
/// );
/// core.run_until_committed(10_000);
/// assert!(core.stats().ipc() > 1.0, "independent ALU ops should flow");
/// ```
#[derive(Debug)]
pub struct Core<S, T: TraceSink = NullSink> {
    cfg: CoreConfig,
    technique: Technique,
    features: Option<RunaheadFeatures>,
    mem: MemoryHierarchy,
    bp: BranchPredictor,
    ace: AceCounter,
    src: S,
    now: u64,

    rob: Rob,
    rat: Rat,
    arch_rat: Rat,
    prf: PhysRegFile,
    /// Ready cycle per physical register (0 = ready, `u64::MAX` = pending
    /// without a known completion yet).
    reg_ready: Vec<u64>,
    /// In-flight producer sequence number per architectural register.
    arch_last_writer: [Option<u64>; ArchReg::total_count()],
    /// PC of the most recent writer of each architectural register —
    /// unlike the sequence table this survives commit, so slice learning
    /// can attribute producers even after they retire.
    arch_last_writer_pc: [Option<u64>; ArchReg::total_count()],
    iq_count: usize,
    lq_count: usize,
    sq_count: usize,
    fu: FuPool,
    sst: Sst,
    prdq: Prdq,

    mode: Mode,
    /// Next correct-path sequence number to dispatch.
    next_seq: u64,
    /// Dispatch is stalled until this cycle (redirects, refills, I-misses).
    fetch_stall_until: u64,
    /// Dispatch is blocked behind this unresolved mispredicted branch.
    wait_branch: Option<u64>,
    last_ifetch_line: u64,
    /// Sequence number of the head instruction being tracked by the
    /// countdown timer, and the cycle it became head.
    head_since: Option<(u64, u64)>,
    /// FLUSH already fired for this blocking head.
    flushed_for: Option<u64>,
    /// Completion cycles of outstanding LLC misses (for the MLP metric).
    active_misses: Vec<u64>,
    /// Keep interval logging on across measurement resets.
    ace_logging: bool,
    /// Active wrong-path episode: the unresolved mispredicted branch's
    /// sequence number (only with `model_wrong_path`).
    wrong_path_after: Option<u64>,
    /// Continuous-runahead background engine: next future sequence to
    /// pre-execute and the validity state of its chain registers
    /// (Technique::Cre only).
    cre: Option<(u64, InvTracker)>,
    /// Cycle the current CRE epoch started; the engine periodically
    /// re-derives its chains (and register validity) from the ROB.
    cre_epoch_start: u64,
    /// Deterministic generator state for synthetic wrong-path micro-ops.
    wp_rng: u64,
    /// Line address of the most recent correct-path load (wrong-path
    /// loads pollute nearby memory).
    last_load_line: u64,

    stats: CoreStats,

    /// Per-cycle stall taxonomy and occupancy shapes; `None` (the
    /// default) costs nothing per cycle, preserving bit-identical runs.
    stall_profile: Option<Box<StallProfile>>,

    /// Per-sequence dead-value refinement from `rar-verify`; empty by
    /// default (every uop classified live), in which case the refined ACE
    /// figures equal the unrefined ones.
    refinement: AceRefinement,
    /// Per-cycle cross-structure invariant checker (`sanitize` feature).
    #[cfg(feature = "sanitize")]
    sanitizer: rar_verify::Sanitizer,

    /// Trace sink; [`NullSink`] by default, in which case every emission
    /// site folds away at monomorphization.
    sink: T,
    /// Emit a [`TraceEvent::Sample`] every this many cycles (0 = never).
    sample_every: u64,
    /// Reused scratch buffer for draining the memory hierarchy's event log.
    mem_scratch: Vec<TraceEvent>,

    /// Armed single-bit fault, applied when `now` reaches its cycle.
    fault: Option<PlannedFault>,
    /// Observed effects of the armed fault.
    fault_report: FaultReport,
    /// Poison propagation is live (a fault has been armed this run).
    fault_active: bool,
    /// Per-physical-register poison bit masks (all zero outside injection
    /// runs; never read unless `fault_active`). Mask bit `i` covers
    /// register bits `i` and `i + 64` ([`rar_verify::MASK_BITS`] lanes);
    /// propagation applies the per-kind bit-transfer functions, so only
    /// consumed poison bits fault a dependent uop.
    poisoned_regs: Vec<u64>,
    /// Sequence and wrong-path flag of the uop that wrote each physical
    /// register (`None` when unwritten). Maintained only while a fault is
    /// armed; lets an RF strike resolve its static predicted-dead stratum.
    phys_writer: Vec<Option<(u64, bool)>>,
    /// Injected address corruption: `(seq, xor)` applied to that load's
    /// issue access / that store's commit drain.
    fault_addr_xor: Option<(u64, u64)>,
    /// Running hash over architecturally observable commits; equal
    /// digests mean architecturally identical executions.
    digest: u64,
}

impl<S: UopSource> Core<S> {
    /// Builds a cold core with tracing disabled (the [`NullSink`] is
    /// monomorphized away, so this is the zero-overhead configuration).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    #[must_use]
    pub fn new(cfg: CoreConfig, mem_cfg: MemConfig, technique: Technique, src: S) -> Self {
        Core::with_sink(cfg, mem_cfg, technique, src, NullSink)
    }
}

impl<S: UopSource, T: TraceSink> Core<S, T> {
    /// Builds a cold core that emits [`TraceEvent`]s into `sink`. Memory
    /// hierarchy tracing is enabled automatically when the sink is live.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    #[must_use]
    pub fn with_sink(
        cfg: CoreConfig,
        mem_cfg: MemConfig,
        technique: Technique,
        src: S,
        sink: T,
    ) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid core config: {e}"));
        let mut mem = MemoryHierarchy::new(mem_cfg);
        if T::ENABLED {
            mem.enable_tracing();
        }
        let mut prf = PhysRegFile::new(cfg.int_regs, cfg.fp_regs);
        let rat = Rat::new(&mut prf);
        let arch_rat = rat.clone();
        let reg_ready = vec![0u64; prf.total()];
        let poisoned_regs = vec![0u64; prf.total()];
        let phys_writer = vec![None; prf.total()];
        Core {
            rob: Rob::new(cfg.rob_size),
            rat,
            arch_rat,
            prf,
            reg_ready,
            arch_last_writer: [None; ArchReg::total_count()],
            arch_last_writer_pc: [None; ArchReg::total_count()],
            iq_count: 0,
            lq_count: 0,
            sq_count: 0,
            fu: FuPool::new(&cfg.fu),
            sst: Sst::new(cfg.sst_size),
            prdq: Prdq::new(cfg.prdq_size),
            mode: Mode::Normal,
            next_seq: 0,
            fetch_stall_until: 0,
            wait_branch: None,
            last_ifetch_line: u64::MAX,
            head_since: None,
            flushed_for: None,
            active_misses: Vec::new(),
            ace_logging: false,
            wrong_path_after: None,
            cre: None,
            cre_epoch_start: 0,
            wp_rng: 0xabcd_ef01_2345_6789,
            last_load_line: 0x1_0000_0000,
            stats: CoreStats::default(),
            stall_profile: None,
            refinement: AceRefinement::none(),
            #[cfg(feature = "sanitize")]
            sanitizer: rar_verify::Sanitizer::new(StallKind::COUNT),
            sink,
            sample_every: 0,
            mem_scratch: Vec::new(),
            fault: None,
            fault_report: FaultReport::default(),
            fault_active: false,
            poisoned_regs,
            phys_writer,
            fault_addr_xor: None,
            digest: 0xcbf2_9ce4_8422_2325,
            mem,
            bp: BranchPredictor::tage_sc_l_8kb(),
            ace: AceCounter::new(),
            features: technique.features(),
            technique,
            cfg,
            src,
            now: 0,
        }
    }

    /// The configured technique.
    #[must_use]
    pub fn technique(&self) -> Technique {
        self.technique
    }

    /// The trace sink (e.g. to read back a captured ring buffer).
    #[must_use]
    pub fn sink(&self) -> &T {
        &self.sink
    }

    /// Mutable access to the trace sink (e.g. to clear it after warm-up).
    pub fn sink_mut(&mut self) -> &mut T {
        &mut self.sink
    }

    /// Consumes the core and hands back the trace sink.
    #[must_use]
    pub fn into_sink(self) -> T {
        self.sink
    }

    /// Emit a [`TraceEvent::Sample`] snapshot every `n` cycles (0 disables
    /// sampling, the default). Has no observable effect with a
    /// [`NullSink`].
    pub fn set_sample_interval(&mut self, n: u64) {
        self.sample_every = n;
    }

    /// The core configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Performance statistics.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Memory-system statistics.
    #[must_use]
    pub fn mem_stats(&self) -> &rar_mem::MemStats {
        self.mem.stats()
    }

    /// Branch-predictor statistics.
    #[must_use]
    pub fn predictor_stats(&self) -> rar_frontend::PredictorStats {
        self.bp.stats()
    }

    /// The ACE accumulator.
    #[must_use]
    pub fn ace(&self) -> &AceCounter {
        &self.ace
    }

    /// Absolute cycle count since construction (never reset; warm-up
    /// included). Fault-injection campaigns plan strike cycles against
    /// this clock.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Installs a static dead-value refinement (from
    /// [`rar_verify::analyze_stream`] over the correct-path uop trace).
    /// Committed destination-register intervals whose sequence number the
    /// refinement proves dynamically dead are additionally reported to
    /// [`AceCounter::record_dead`], so the run's reliability report carries
    /// both the unrefined (paper) AVF and the refined lower bound.
    pub fn set_ace_refinement(&mut self, refinement: AceRefinement) {
        self.refinement = refinement;
    }

    /// The installed dead-value refinement (empty by default).
    #[must_use]
    pub fn ace_refinement(&self) -> &AceRefinement {
        &self.refinement
    }

    /// Stalling-slice-table telemetry: (resident PCs, hits, lookups).
    #[must_use]
    pub fn sst_stats(&self) -> (usize, u64, u64) {
        let (hits, lookups) = self.sst.hit_stats();
        (self.sst.len(), hits, lookups)
    }

    /// Whether `pc` is currently a known stalling-slice member (debug).
    pub fn sst_contains(&mut self, pc: u64) -> bool {
        self.sst.contains(pc)
    }

    /// Reliability summary for the elapsed run.
    #[must_use]
    pub fn reliability_report(&self) -> ReliabilityReport {
        ReliabilityReport::new(&self.ace, &self.cfg.capacities(), self.stats.cycles)
    }

    /// Zeroes the measured statistics and ACE state while keeping all
    /// microarchitectural state (caches, predictors, SST) warm. Call after
    /// a warm-up phase.
    pub fn reset_measurement(&mut self) {
        self.stats = CoreStats::default();
        self.ace = if self.ace_logging {
            AceCounter::with_logging()
        } else {
            AceCounter::new()
        };
        self.mem.reset_stats();
        self.bp.reset_stats();
        if let Some(profile) = &mut self.stall_profile {
            **profile = StallProfile::default();
        }
        #[cfg(feature = "sanitize")]
        self.sanitizer.reset_measurement(self.rob.len() as u64);
    }

    /// Enables per-cycle stall/occupancy profiling ([`StallProfile`]).
    /// Survives [`Core::reset_measurement`] (which zeroes the tallies, so
    /// the profile covers exactly the measured cycles). Profiling only
    /// observes simulator state — profiled runs produce bit-identical
    /// statistics to unprofiled ones.
    pub fn enable_stall_profiling(&mut self) {
        if self.stall_profile.is_none() {
            self.stall_profile = Some(Box::default());
        }
    }

    /// The accumulated stall profile, when profiling is enabled.
    #[must_use]
    pub fn stall_profile(&self) -> Option<&StallProfile> {
        self.stall_profile.as_deref()
    }

    /// Enables recording of committed occupancy intervals for
    /// fault-injection campaigns ([`rar_ace::inject`]). Survives
    /// [`Core::reset_measurement`].
    pub fn enable_ace_logging(&mut self) {
        self.ace_logging = true;
        self.ace.enable_logging();
    }

    /// Runs until `n` instructions have been committed since the last
    /// measurement reset.
    pub fn run_until_committed(&mut self, n: u64) {
        let limit_cycles = self.now + n.saturating_mul(1_000).max(1_000_000);
        while self.stats.committed < n {
            self.cycle();
            assert!(
                self.now < limit_cycles,
                "simulation wedged: {} committed of {n} after {} cycles",
                self.stats.committed,
                self.now
            );
        }
    }

    /// Runs until `n` instructions have been committed since the last
    /// measurement reset, bounded by a cycle budget and an optional
    /// wall-clock deadline. Unlike [`Core::run_until_committed`] a wedged
    /// simulation returns a verdict instead of panicking — fault-injection
    /// campaigns and sweep watchdogs classify the exhausted budget as a
    /// hang (DUE) or a timeout.
    pub fn run_budgeted(
        &mut self,
        n: u64,
        max_cycles: u64,
        deadline: Option<std::time::Instant>,
    ) -> RunVerdict {
        let start_cycles = self.stats.cycles;
        let mut tick = 0u32;
        while self.stats.committed < n {
            self.cycle();
            if self.stats.cycles - start_cycles >= max_cycles {
                return RunVerdict::CycleBudget;
            }
            tick += 1;
            if tick >= 4096 {
                tick = 0;
                if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                    return RunVerdict::Deadline;
                }
            }
        }
        RunVerdict::Completed
    }

    /// Advances the core by one cycle.
    pub fn cycle(&mut self) {
        // Activity snapshot for the stall classifier; `None` (the default)
        // keeps the profiled-off cycle loop untouched.
        let stall_pre = self.stall_profile.is_some().then_some((
            self.stats.committed,
            self.stats.dispatched,
            self.stats.issued,
            self.stats.runahead_uops,
        ));
        self.now += 1;
        self.stats.cycles += 1;
        if self.fault.is_some_and(|f| f.cycle <= self.now) {
            self.apply_fault();
        }

        // Runahead exit is checked before commit: when the blocking load's
        // data returns, flush variants squash it along with the rest of
        // the back-end (Figure 6) rather than letting it commit first.
        if let Mode::Runahead(state) = &self.mode {
            if self.now >= state.exit_at {
                self.exit_runahead();
            }
        }
        // Wrong-path episodes end when the mispredicted branch resolves:
        // everything younger is squashed (un-ACE) and fetch pays the
        // redirect penalty.
        if let Some(branch_seq) = self.wrong_path_after {
            let resolved = self
                .rob
                .get(branch_seq)
                .is_none_or(|e| e.completed(self.now));
            if resolved {
                let resume = self
                    .rob
                    .get(branch_seq)
                    .and_then(|e| e.complete_at)
                    .unwrap_or(self.now);
                self.squash_after(branch_seq);
                self.fetch_stall_until =
                    self.fetch_stall_until.max(resume + self.cfg.frontend_depth);
                self.wrong_path_after = None;
            }
        }
        self.commit_stage();
        self.track_blocking_head();
        self.issue_stage();
        match &self.mode {
            Mode::Normal if self.wrong_path_after.is_some() => self.dispatch_wrong_path(),
            Mode::Normal => self.dispatch_stage(),
            Mode::Runahead(_) => self.runahead_stage(),
        }
        if self.technique == Technique::Cre {
            self.cre_stage();
        }
        self.mlp_sample();
        if T::ENABLED {
            self.drain_mem_trace();
            if self.sample_every > 0 && self.now.is_multiple_of(self.sample_every) {
                self.emit_sample();
            }
        }
        if let Some(pre) = stall_pre {
            self.stall_tally(pre);
        }
        #[cfg(feature = "sanitize")]
        self.sanitize_check();
    }

    /// Attributes the cycle that just elapsed to exactly one
    /// [`StallBucket`] (first match wins) and samples back-end occupancy.
    /// Read-only over pipeline state, so profiled runs stay bit-identical.
    fn stall_tally(&mut self, pre: (u64, u64, u64, u64)) {
        let (committed, dispatched, issued, runahead_uops) = pre;
        let retired = self.stats.committed > committed;
        let moved = retired
            || self.stats.dispatched > dispatched
            || self.stats.issued > issued
            || self.stats.runahead_uops > runahead_uops;
        let bucket = if retired {
            StallBucket::Retiring
        } else if !moved {
            StallBucket::Quiescent
        } else if self.mode.is_runahead() {
            StallBucket::Runahead
        } else if self.blocking_head().is_some() {
            StallBucket::DramWait
        } else if self.rob.is_full() {
            StallBucket::RobFull
        } else if self.iq_count >= self.cfg.iq_size {
            StallBucket::IqFull
        } else if self.lq_count >= self.cfg.lq_size || self.sq_count >= self.cfg.sq_size {
            StallBucket::LsqFull
        } else if self.now < self.fetch_stall_until
            || self.wait_branch.is_some()
            || self.wrong_path_after.is_some()
        {
            StallBucket::Frontend
        } else {
            StallBucket::Exec
        };
        let occupancies = [
            self.rob.len(),
            self.iq_count,
            self.lq_count,
            self.sq_count,
            self.active_misses.len(),
        ];
        let profile = self
            .stall_profile
            .as_mut()
            .expect("stall_tally called only when profiling");
        profile.tally(bucket);
        for (row, occ) in occupancies.into_iter().enumerate() {
            profile.observe_occupancy(row, occ);
        }
    }

    /// Cross-checks the pipeline's redundant bookkeeping against ground
    /// truth recomputed from the ROB, PRF, MSHR file and ACE window sets,
    /// panicking with a precise diagnostic on the first violation. Only
    /// reads simulator state — a sanitized build produces bit-identical
    /// statistics to a default build.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    #[cfg(feature = "sanitize")]
    fn sanitize_check(&mut self) {
        let now = self.now;
        let s = &mut self.sanitizer;

        s.check_uop_conservation(
            now,
            self.stats.dispatched,
            self.stats.committed,
            self.stats.squashed,
            self.rob.len() as u64,
        );

        for (name, class, total) in [
            ("int", RegClass::Int, self.cfg.int_regs),
            ("fp", RegClass::Fp, self.cfg.fp_regs),
        ] {
            let rat_mapped = self
                .rat
                .live_regs()
                .iter()
                .filter(|r| r.class == class)
                .count();
            let in_flight_old = self
                .rob
                .iter()
                .filter(|e| e.old_phys.is_some_and(|p| p.class == class))
                .count();
            s.check_prf(
                now,
                name,
                self.prf.free_count(class),
                rat_mapped,
                in_flight_old,
                total,
            );
        }

        s.check_rob_order(now, self.rob.iter().map(|e| e.seq));

        let rob_in_iq = self.rob.iter().filter(|e| e.in_iq).count();
        let rob_loads = self.rob.iter().filter(|e| e.uop.is_load()).count();
        let rob_stores = self.rob.iter().filter(|e| e.uop.is_store()).count();
        s.check_queue_counts(
            now,
            self.iq_count,
            self.lq_count,
            self.sq_count,
            rob_in_iq,
            rob_loads,
            rob_stores,
            self.cfg.lq_size,
            self.cfg.sq_size,
        );

        let (allocations, released, resident, capacity, peak) = self.mem.mshr_sanity();
        s.check_mshr(now, allocations, released, resident, capacity, peak);

        for kind in [StallKind::RobHeadBlocked, StallKind::FullRobStall] {
            s.check_windows(
                now,
                kind.index(),
                self.ace.window_count(kind) as u64,
                self.ace.window_open(kind),
            );
        }

        if let Some(v) = s.first_violation() {
            panic!("sanitizer: {v}");
        }
    }

    /// Forwards the memory hierarchy's buffered events into the sink. The
    /// scratch vector is reused so steady-state tracing does not allocate.
    fn drain_mem_trace(&mut self) {
        let mut buf = std::mem::take(&mut self.mem_scratch);
        self.mem.drain_trace(&mut buf);
        for ev in buf.drain(..) {
            self.sink.emit(ev);
        }
        self.mem_scratch = buf;
    }

    fn emit_sample(&mut self) {
        let row = SampleRow {
            cycle: self.now,
            rob: self.rob.len(),
            iq: self.iq_count,
            lq: self.lq_count,
            sq: self.sq_count,
            in_runahead: self.mode.is_runahead(),
            committed: self.stats.committed,
            outstanding_misses: self.active_misses.len(),
            abc_by_structure: self.ace.abc_by_structure().to_vec(),
        };
        self.sink.emit(TraceEvent::Sample(row));
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit_stage(&mut self) {
        for _ in 0..self.cfg.width {
            let Some(head) = self.rob.head() else { break };
            if !head.completed(self.now) {
                break;
            }
            let e = self.rob.pop_head().expect("head exists");
            self.record_ace_commit(&e);
            self.update_commit_digest(&e);
            if T::ENABLED {
                self.sink.emit(TraceEvent::UopRetired {
                    seq: e.seq,
                    pc: e.uop.pc(),
                    dispatch: e.dispatch_cycle,
                    issue: e.issue_cycle.unwrap_or(self.now),
                    complete: e.complete_at.unwrap_or(self.now),
                    commit: self.now,
                });
            }
            // Commit updates the architectural RAT and frees the previous
            // mapping of the destination register.
            if let (Some(dest), Some(phys)) = (e.uop.dest(), e.dest_phys) {
                let _ = self.arch_rat.rename(dest, phys);
            }
            if let Some(old) = e.old_phys {
                self.prf.free(old);
                let flat = old.flat(self.prf.int_regs());
                self.reg_ready[flat] = 0;
                if self.fault_active {
                    self.poisoned_regs[flat] = 0;
                    self.phys_writer[flat] = None;
                }
            }
            if e.uop.is_load() {
                self.lq_count -= 1;
            }
            if e.uop.is_store() {
                self.sq_count -= 1;
                // The store drains to the cache at commit.
                if let Some(m) = e.uop.mem() {
                    let addr = self.effective_addr(e.seq, m.addr);
                    let _ = self
                        .mem
                        .access(AccessKind::Store, addr, e.uop.pc(), self.now);
                }
            }
            if e.in_iq {
                // Never issued (squashless commit only happens for issued
                // entries, but be defensive for NOPs).
                self.iq_count -= 1;
            }
            // Retire the writer table lazily: only clear if this entry is
            // still the registered last writer.
            if let Some(dest) = e.uop.dest() {
                if self.arch_last_writer[dest.flat_index()] == Some(e.seq) {
                    self.arch_last_writer[dest.flat_index()] = None;
                }
            }
            self.stats.committed += 1;
            if self.stats.committed.is_multiple_of(1024) {
                let head_seq = self.rob.head().map_or(e.seq + 1, |h| h.seq);
                self.src.release_before(head_seq);
            }
        }
    }

    fn record_ace_commit(&mut self, e: &Entry) {
        if e.uop.kind() == UopKind::Nop {
            return; // NOPs are un-ACE.
        }
        let c = self.now;
        self.ace
            .record_committed(Structure::Rob, ROB_ENTRY_BITS, e.dispatch_cycle, c);
        let issue = e.issue_cycle.unwrap_or(c);
        self.ace
            .record_committed(Structure::Iq, IQ_ENTRY_BITS, e.dispatch_cycle, issue);
        if let Some(x) = e.exec_start {
            if e.uop.is_load() {
                self.ace
                    .record_committed(Structure::Lq, LQ_ENTRY_BITS, x, c);
            }
            if e.uop.is_store() {
                self.ace
                    .record_committed(Structure::Sq, SQ_ENTRY_BITS, x, c);
            }
            let fu_bits = if e.uop.kind().is_fp() {
                FP_FU_BITS
            } else {
                INT_FU_BITS
            };
            self.ace
                .record_committed(Structure::Fu, fu_bits, x, x + e.fu_latency);
        }
        if let Some(phys) = e.dest_phys {
            let written = e.complete_at.unwrap_or(c).min(c);
            let s = match phys.class {
                RegClass::Int => Structure::RfInt,
                RegClass::Fp => Structure::RfFp,
            };
            self.ace.record_committed(s, phys.bits(), written, c);
            // Static un-ACE refinement: bits of the destination value the
            // dead-value analysis proved are never consumed. Applied only
            // to the register-file interval — the Table III ROB/IQ/LQ/SQ
            // entry bits are control metadata, not the value itself.
            if !e.wrong_path {
                let dead = self.refinement.dead_dest_bits(e.seq, phys.bits());
                if dead > 0 {
                    self.ace.record_dead(s, dead, written, c);
                }
                // Bit-level refinement: the per-bit transfer functions
                // prove at least as many dead bits as the word-level
                // classes (`bit_refined <= refined <= unrefined` holds by
                // construction in `AceRefinement`).
                let bit_dead = self.refinement.bit_dead_dest_bits(e.seq, phys.bits());
                if bit_dead > 0 {
                    self.ace.record_dead_bits(s, bit_dead, written, c);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Blocking-head tracking: ACE windows, countdown timer, triggers
    // ------------------------------------------------------------------

    fn blocking_head(&self) -> Option<(u64, u64)> {
        // Returns (seq, complete_at) when the head is an issued,
        // uncompleted LLC-missing load.
        let head = self.rob.head()?;
        let complete = head.complete_at?;
        if head.uop.is_load() && head.mem_level == Some(HitLevel::Memory) && complete > self.now {
            Some((head.seq, complete))
        } else {
            None
        }
    }

    fn track_blocking_head(&mut self) {
        // Countdown-timer bookkeeping: which seq is at the head, since when.
        match self.rob.head().map(|h| h.seq) {
            Some(seq) => {
                if self.head_since.map(|(s, _)| s) != Some(seq) {
                    self.head_since = Some((seq, self.now));
                }
            }
            None => self.head_since = None,
        }

        let Some((blocking_seq, complete_at)) = self.blocking_head() else {
            if self.ace.window_open(StallKind::RobHeadBlocked) {
                self.close_stall_window(StallKind::RobHeadBlocked);
            }
            if self.ace.window_open(StallKind::FullRobStall) {
                self.close_stall_window(StallKind::FullRobStall);
            }
            return;
        };

        self.stats.head_blocked_cycles += 1;
        #[cfg(feature = "sanitize")]
        if !self.ace.window_open(StallKind::RobHeadBlocked) {
            self.sanitizer
                .note_window_open(StallKind::RobHeadBlocked.index());
        }
        self.ace.open_window(StallKind::RobHeadBlocked, self.now);
        if self.rob.is_full() {
            #[cfg(feature = "sanitize")]
            if !self.ace.window_open(StallKind::FullRobStall) {
                self.sanitizer
                    .note_window_open(StallKind::FullRobStall.index());
            }
            self.ace.open_window(StallKind::FullRobStall, self.now);
        } else if self.ace.window_open(StallKind::FullRobStall) {
            self.close_stall_window(StallKind::FullRobStall);
        }

        if self.mode.is_runahead() {
            return;
        }

        let blocked_cycles = self
            .head_since
            .map_or(0, |(_, since)| self.now.saturating_sub(since));

        // FLUSH: Weaver et al. — flush behind the blocking access; the
        // pipeline refills when the access returns. Like the runahead
        // variants' late trigger, the flush fires on a full-window stall:
        // the paper's text says "blocks the head", but its results (FLUSH
        // and RAR-LATE remove nearly the same ABC; mcf's FLUSH gain is
        // modest) are only consistent with full-ROB-stall coverage, which
        // also matches Weaver et al.'s original in-order setting where a
        // blocking miss and a full pipeline coincide.
        if self.technique == Technique::Flush
            && self.flushed_for != Some(blocking_seq)
            && self.rob.is_full()
        {
            self.flushed_for = Some(blocking_seq);
            self.flush_behind_head(complete_at);
            return;
        }

        // Runahead triggers.
        let Some(features) = self.features else {
            return;
        };
        let remaining = complete_at - self.now;
        if remaining < self.cfg.min_runahead_benefit {
            return;
        }
        let full_stall = self.rob.is_full();
        let timer_fired = blocked_cycles >= self.cfg.runahead_timer;
        let trigger = if features.early {
            timer_fired || full_stall
        } else {
            full_stall
        };
        if !trigger {
            return;
        }
        if !features.lean {
            // TR's filter: only enter for loads issued to memory recently
            // (long remaining latency).
            let head = self.rob.head().expect("blocking head exists");
            let issued_at = head.issue_cycle.unwrap_or(self.now);
            if self.now.saturating_sub(issued_at) > self.cfg.tr_trigger_window {
                return;
            }
        }
        // The full-ROB condition dominates for attribution: an early timer
        // that fires the same cycle the ROB fills is recorded as full-ROB.
        let reason = if full_stall {
            RunaheadTrigger::FullRob
        } else {
            RunaheadTrigger::Timer
        };
        self.enter_runahead(blocking_seq, complete_at, features, reason);
    }

    /// Closes an ACE stall window and forwards the recorded interval to the
    /// trace sink.
    fn close_stall_window(&mut self, kind: StallKind) {
        let closed = self.ace.close_window(kind, self.now);
        #[cfg(feature = "sanitize")]
        if closed.is_some() {
            self.sanitizer.note_window_close(kind.index());
        }
        if T::ENABLED {
            if let Some((start, end)) = closed {
                let kind = match kind {
                    StallKind::RobHeadBlocked => rar_trace::BlockedKind::RobHeadBlocked,
                    StallKind::FullRobStall => rar_trace::BlockedKind::FullRob,
                };
                self.sink.emit(TraceEvent::StallWindow { kind, start, end });
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn issue_stage(&mut self) {
        let mut budget = self.cfg.width;
        let now = self.now;
        let int_regs = self.prf.int_regs();
        let mut issued: Vec<u64> = Vec::new();
        let mut llc_miss_loads: Vec<u64> = Vec::new();

        // Collect issuable entries oldest-first. Borrow discipline: first
        // select, then mutate.
        let mut candidates: Vec<u64> = Vec::new();
        for e in self.rob.iter() {
            if candidates.len() >= budget {
                break;
            }
            if e.in_iq && e.src_phys_ready(&self.reg_ready, int_regs, now) {
                candidates.push(e.seq);
            }
        }

        for seq in candidates {
            if budget == 0 {
                break;
            }
            // Re-fetch the entry mutably.
            let Some(e) = self.rob.get(seq) else { continue };
            let kind = e.uop.kind();
            if !self.fu.try_issue(kind, now) {
                continue;
            }
            let uop = e.uop.clone();
            let mispredicted = e.mispredicted;

            let complete_at = match kind {
                UopKind::Load => {
                    let m = uop.mem().expect("loads carry an address");
                    let addr = self.effective_addr(seq, m.addr);
                    match self.mem.access(AccessKind::Load, addr, uop.pc(), now + 1) {
                        Ok(out) => {
                            let entry = self.rob.get_mut(seq).expect("entry resident");
                            entry.mem_level = Some(out.level);
                            if out.level == HitLevel::Memory {
                                self.active_misses.push(out.complete_at);
                                llc_miss_loads.push(seq);
                            }
                            self.last_load_line = cache_line(addr);
                            out.complete_at
                        }
                        Err(MemStall::MshrFull) => continue, // retry next cycle
                    }
                }
                UopKind::Store => {
                    // Address generation only; data drains at commit.
                    now + exec_latency(kind)
                }
                _ => now + exec_latency(kind),
            };

            let e = self.rob.get_mut(seq).expect("entry resident");
            e.issue_cycle = Some(now);
            e.exec_start = Some(now);
            e.complete_at = Some(complete_at);
            e.in_iq = false;
            e.fu_latency = exec_latency(kind);
            if self.fault_active {
                // Per-bit poison propagation along true dependences,
                // governed by the same bit-transfer functions the static
                // analysis uses: only source bits the kind consumes can
                // fault the entry, and the destination inherits exactly
                // the forward image of the consumed poison (plus a full
                // mask when the entry itself was struck).
                let struck_directly = e.faulted;
                let consumed_mask = rar_verify::consumed_src_mask(kind);
                let mut consumed = 0u64;
                for p in e.src_phys_cache.iter().flatten() {
                    consumed |= self.poisoned_regs[p.flat(int_regs)] & consumed_mask;
                }
                if consumed != 0 {
                    e.faulted = true;
                }
                if e.faulted {
                    if let Some(p) = e.dest_phys {
                        let dest_poison = if struck_directly {
                            u64::MAX
                        } else {
                            rar_verify::dest_poison_mask(kind, consumed)
                        };
                        self.poisoned_regs[p.flat(int_regs)] |= dest_poison;
                    }
                }
            }
            self.iq_count -= 1;
            budget -= 1;
            issued.push(seq);
            if T::ENABLED {
                self.sink.emit(TraceEvent::UopIssued {
                    seq,
                    cycle: now,
                    complete_at,
                });
            }

            if let Some(phys) = e.dest_phys {
                self.reg_ready[phys.flat(int_regs)] = complete_at;
            }
            if kind == UopKind::Branch && mispredicted {
                // The branch resolves at completion; fetch restarts after
                // the front-end refill.
                self.fetch_stall_until = self
                    .fetch_stall_until
                    .max(complete_at + self.cfg.frontend_depth);
                if self.wait_branch == Some(seq) {
                    self.wait_branch = None;
                }
            }
        }

        // Train the SST with the backward slices of LLC-missing loads.
        for seq in llc_miss_loads {
            self.learn_slice(seq);
        }
        self.stats.issued += issued.len() as u64;
    }

    /// Walks the in-flight backward slice of the load at `seq` and inserts
    /// the producers' PCs into the SST. Producers that already committed
    /// are attributed through the per-register last-writer PC table, so
    /// tight address-update chains (stream index increments) train even
    /// when they retire before the load issues.
    fn learn_slice(&mut self, seq: u64) {
        let Some(load) = self.rob.get(seq) else {
            return;
        };
        let src_pcs: Vec<u64> = load
            .uop
            .srcs()
            .filter_map(|s| self.arch_last_writer_pc[s.flat_index()])
            .collect();
        let mut frontier: Vec<u64> = load.src_writers.iter().flatten().copied().collect();
        for pc in src_pcs {
            self.sst.insert(pc);
        }
        let mut visited = 0;
        while let Some(wseq) = frontier.pop() {
            if visited >= 16 {
                break;
            }
            visited += 1;
            if let Some(w) = self.rob.get(wseq) {
                self.sst.insert(w.uop.pc());
                frontier.extend(w.src_writers.iter().flatten().copied());
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (normal mode)
    // ------------------------------------------------------------------

    fn dispatch_stage(&mut self) {
        if self.now < self.fetch_stall_until || self.wait_branch.is_some() {
            return;
        }
        // THROTTLE (Soundararajan et al.): maintain a hard occupancy bound
        // on the back-end — dispatch narrows (default: stops) whenever the
        // ROB holds more than the bound, directly capping how much
        // vulnerable state can ever be exposed under a miss.
        let width = if self.technique == Technique::Throttle
            && self.rob.len() as f64 >= self.cfg.throttle_occupancy_bound * self.cfg.rob_size as f64
        {
            self.cfg.throttle_width
        } else {
            self.cfg.width
        };
        if width == 0 {
            return;
        }
        for _ in 0..width {
            if self.rob.is_full() {
                self.stats.rob_full_cycles += 1;
                return;
            }
            if self.iq_count >= self.cfg.iq_size {
                self.stats.iq_full_cycles += 1;
                return;
            }
            let uop = self.src.get(self.next_seq).clone();

            // Instruction fetch: charge a bubble when crossing into a line
            // that misses the L1-I.
            let line = cache_line(uop.pc());
            if line != self.last_ifetch_line {
                self.last_ifetch_line = line;
                let out = self
                    .mem
                    .access(AccessKind::Ifetch, uop.pc(), uop.pc(), self.now)
                    .expect("ifetch never stalls");
                if out.level != HitLevel::L1 {
                    self.fetch_stall_until = out.complete_at;
                    return;
                }
            }

            if uop.is_load() && self.lq_count >= self.cfg.lq_size {
                return;
            }
            if uop.is_store() && self.sq_count >= self.cfg.sq_size {
                return;
            }
            // Rename.
            let mut src_phys = [None, None];
            let mut src_writers = [None, None];
            for (i, src) in uop.srcs().enumerate() {
                src_phys[i] = Some(self.rat.lookup(src));
                src_writers[i] = self.arch_last_writer[src.flat_index()];
            }
            let (dest_phys, old_phys) = match uop.dest() {
                Some(dest) => {
                    let Some(fresh) = self.prf.alloc(dest.class()) else {
                        return; // rename stalls on PRF exhaustion
                    };
                    self.reg_ready[fresh.flat(self.prf.int_regs())] = u64::MAX;
                    if self.fault_active {
                        self.phys_writer[fresh.flat(self.prf.int_regs())] =
                            Some((self.next_seq, false));
                    }
                    let old = self.rat.rename(dest, fresh);
                    self.arch_last_writer[dest.flat_index()] = Some(self.next_seq);
                    self.arch_last_writer_pc[dest.flat_index()] = Some(uop.pc());
                    (Some(fresh), Some(old))
                }
                None => (None, None),
            };

            // Branch prediction.
            let mut mispredicted = false;
            if let Some(b) = uop.branch_info() {
                let pred = self.bp.predict(uop.pc());
                mispredicted = self.bp.update(uop.pc(), b.taken, b.target);
                if mispredicted {
                    self.stats.branch_mispredicts += 1;
                } else if b.taken && pred.target != Some(b.target) {
                    // Correct direction, unknown target: redirect bubble.
                    self.fetch_stall_until = self.now + 2;
                }
            }

            let entry = Entry {
                seq: self.next_seq,
                uop,
                dispatch_cycle: self.now,
                issue_cycle: None,
                exec_start: None,
                complete_at: None,
                dest_phys,
                old_phys,
                mem_level: None,
                mispredicted,
                in_iq: true,
                src_writers,
                src_phys_cache: src_phys,
                wrong_path: false,
                fu_latency: 1,
                faulted: false,
            };
            if entry.uop.is_load() {
                self.lq_count += 1;
            }
            if entry.uop.is_store() {
                self.sq_count += 1;
            }
            self.iq_count += 1;
            self.stats.dispatched += 1;
            if T::ENABLED {
                self.sink.emit(TraceEvent::UopDispatched {
                    seq: entry.seq,
                    pc: entry.uop.pc(),
                    cycle: self.now,
                    runahead: false,
                });
            }
            self.rob.push(entry);
            if mispredicted {
                if self.cfg.model_wrong_path {
                    self.wrong_path_after = Some(self.next_seq);
                } else {
                    self.wait_branch = Some(self.next_seq);
                }
                self.next_seq += 1;
                return;
            }
            self.next_seq += 1;
        }
    }

    fn wp_next(&mut self) -> u64 {
        self.wp_rng = self.wp_rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.wp_rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Dispatches synthetic wrong-path micro-ops while a mispredicted
    /// branch is unresolved. They rename, occupy back-end resources,
    /// execute (polluting caches and MSHRs), and are squashed at
    /// resolution — contending like real wrong-path work without being
    /// part of the correct-path trace.
    fn dispatch_wrong_path(&mut self) {
        if self.now < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.cfg.width {
            if self.rob.is_full() || self.iq_count >= self.cfg.iq_size {
                return;
            }
            let seq = match self.rob.iter().last() {
                Some(tail) => tail.seq + 1,
                None => return, // branch already gone; episode is ending
            };
            let r = self.wp_next();
            let pc = 0x7f_0000 + (r % 512) * 4;
            let uop = if r % 10 < 3 {
                if self.lq_count >= self.cfg.lq_size {
                    return;
                }
                // Wrong-path loads wander near recent correct-path data.
                let addr = self
                    .last_load_line
                    .wrapping_add((self.wp_next() % 4096) * 64)
                    & !63;
                rar_isa::Uop::load(pc, addr, 8).with_dest(ArchReg::int((r % 32) as u8))
            } else {
                rar_isa::Uop::alu(pc, UopKind::IntAlu)
                    .with_dest(ArchReg::int((r % 32) as u8))
                    .with_src(ArchReg::int(((r >> 8) % 32) as u8))
            };
            let mut src_phys = [None, None];
            for (i, src) in uop.srcs().enumerate() {
                src_phys[i] = Some(self.rat.lookup(src));
            }
            let (dest_phys, old_phys) = match uop.dest() {
                Some(dest) => {
                    let Some(fresh) = self.prf.alloc(dest.class()) else {
                        return;
                    };
                    self.reg_ready[fresh.flat(self.prf.int_regs())] = u64::MAX;
                    if self.fault_active {
                        self.phys_writer[fresh.flat(self.prf.int_regs())] = Some((seq, true));
                    }
                    let old = self.rat.rename(dest, fresh);
                    (Some(fresh), Some(old))
                }
                None => (None, None),
            };
            let is_load = uop.is_load();
            self.rob.push(Entry {
                seq,
                uop,
                dispatch_cycle: self.now,
                issue_cycle: None,
                exec_start: None,
                complete_at: None,
                dest_phys,
                old_phys,
                mem_level: None,
                mispredicted: false,
                in_iq: true,
                src_writers: [None, None],
                src_phys_cache: src_phys,
                wrong_path: true,
                fu_latency: 1,
                faulted: false,
            });
            self.iq_count += 1;
            self.stats.dispatched += 1;
            if is_load {
                self.lq_count += 1;
            }
            if T::ENABLED {
                self.sink.emit(TraceEvent::UopDispatched {
                    seq,
                    pc,
                    cycle: self.now,
                    runahead: false,
                });
            }
        }
    }

    /// Squashes every instruction younger than `seq`, rolling the RAT
    /// back by undoing renames youngest-first. Squashed occupancy is
    /// never reported to the ACE counter.
    fn squash_after(&mut self, seq: u64) {
        let squashed = self.rob.drain_after(seq);
        self.stats.squashed += squashed.len() as u64;
        if T::ENABLED {
            for e in &squashed {
                self.sink.emit(TraceEvent::UopSquashed {
                    seq: e.seq,
                    pc: e.uop.pc(),
                    dispatch: e.dispatch_cycle,
                    cycle: self.now,
                });
            }
        }
        let int_regs = self.prf.int_regs();
        for e in squashed.iter().rev() {
            self.note_squashed_entry(e);
            if let (Some(dest), Some(fresh), Some(old)) = (e.uop.dest(), e.dest_phys, e.old_phys) {
                let current = self.rat.rename(dest, old);
                debug_assert_eq!(current, fresh, "RAT rollback out of order");
                self.prf.free(fresh);
                self.reg_ready[fresh.flat(int_regs)] = 0;
                if self.fault_active {
                    self.poisoned_regs[fresh.flat(int_regs)] = 0;
                    self.phys_writer[fresh.flat(int_regs)] = None;
                }
            }
            if e.in_iq {
                self.iq_count -= 1;
            }
            if e.uop.is_load() {
                self.lq_count -= 1;
            }
            if e.uop.is_store() {
                self.sq_count -= 1;
            }
            if let Some(dest) = e.uop.dest() {
                if self.arch_last_writer[dest.flat_index()] == Some(e.seq) {
                    self.arch_last_writer[dest.flat_index()] = None;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Runahead
    // ------------------------------------------------------------------

    fn enter_runahead(
        &mut self,
        blocking_seq: u64,
        exit_at: u64,
        features: RunaheadFeatures,
        trigger: RunaheadTrigger,
    ) {
        self.stats.runahead_intervals += 1;
        if T::ENABLED {
            self.sink.emit(TraceEvent::RunaheadEnter {
                cycle: self.now,
                blocking_seq,
                trigger,
                expected_exit: exit_at,
            });
        }
        // Registers produced by in-flight instructions remain readable from
        // the PRF as those instructions complete during the interval; only
        // values that will NOT materialize in time — unreturned LLC misses
        // — are INV (the blocking load first among them).
        let mut inv = InvTracker::all_valid();
        for e in self.rob.iter() {
            let pending_miss = e.mem_level == Some(HitLevel::Memory)
                && e.complete_at.is_some_and(|c| c > self.now);
            let unknown = e.uop.is_load() && e.complete_at.is_none();
            if pending_miss || unknown {
                if let Some(d) = e.uop.dest() {
                    inv.invalidate(d);
                }
            }
        }
        // Traditional runahead checkpoints architectural state on entry;
        // PRE enters instantaneously (its key claim).
        let entry_stall = if features.lean {
            0
        } else {
            self.cfg.frontend_depth
        };
        self.mode = Mode::Runahead(RaState {
            blocking_seq,
            exit_at,
            entered_at: self.now,
            ra_seq: self.next_seq,
            inv,
            entry_stall,
        });
    }

    fn runahead_stage(&mut self) {
        let Mode::Runahead(state) = &self.mode else {
            return;
        };
        let features = self.features.expect("runahead implies features");
        if self.now >= state.exit_at {
            self.exit_runahead();
            return;
        }
        self.stats.runahead_cycles += 1;

        let Mode::Runahead(state) = &mut self.mode else {
            unreachable!()
        };
        if state.entry_stall > 0 {
            state.entry_stall -= 1;
            return;
        }
        let mut fetch_budget = self.cfg.width;
        // Vector runahead packs several chain iterations into one issue
        // slot, multiplying slice throughput.
        let mut exec_budget = if features.vector {
            self.cfg.width * 4
        } else {
            self.cfg.width
        };
        // The runahead buffer replays dependence chains without touching
        // the front-end: skipping a non-slice micro-op is free, bounded
        // only by how far ahead the buffer's chains can reach per cycle.
        let mut skip_budget: u32 = if features.buffered { 256 } else { 0 };
        let depth_limit = self.next_seq + self.cfg.max_runahead_depth;

        while fetch_budget > 0 && exec_budget > 0 {
            let Mode::Runahead(state) = &mut self.mode else {
                unreachable!()
            };
            if state.ra_seq >= depth_limit {
                break;
            }
            let seq = state.ra_seq;
            let uop = self.src.get(seq).clone();
            let pc = uop.pc();

            let in_slice = if features.lean {
                uop.is_load() || self.sst.contains(pc)
            } else {
                true
            };
            let Mode::Runahead(state) = &mut self.mode else {
                unreachable!()
            };
            if !in_slice {
                // Fetched but skipped: its result is not computed.
                if let Some(d) = uop.dest() {
                    state.inv.invalidate(d);
                }
                state.ra_seq += 1;
                if skip_budget > 0 {
                    skip_budget -= 1; // buffered replay: skip is free
                } else {
                    fetch_budget -= 1;
                }
                self.stats.runahead_uops += 1;
                continue;
            }

            // Execution cost: lean runahead executes slices cheaply;
            // traditional runahead pays real latency serialization.
            let cost = if features.lean {
                1
            } else {
                (exec_latency(uop.kind()) / 2).max(1) as usize
            };
            if exec_budget < cost {
                break;
            }

            let srcs_valid = state.inv.srcs_valid(&uop);
            match uop.kind() {
                UopKind::Load => {
                    if !srcs_valid {
                        if let Some(d) = uop.dest() {
                            state.inv.invalidate(d);
                        }
                        self.stats.runahead_inv_loads += 1;
                    } else {
                        if !self.prdq.try_push(self.now, self.now + 4) {
                            break; // PRDQ full: stall this cycle
                        }
                        let m = uop.mem().expect("loads carry an address");
                        match self.mem.access(AccessKind::Load, m.addr, pc, self.now) {
                            Ok(out) => {
                                self.stats.runahead_prefetches += 1;
                                self.mem.note_runahead_load();
                                let Mode::Runahead(state) = &mut self.mode else {
                                    unreachable!()
                                };
                                if let Some(d) = uop.dest() {
                                    // Data that will not return within the
                                    // interval is INV.
                                    state.inv.set(d, out.complete_at <= state.exit_at);
                                }
                                if out.level == HitLevel::Memory {
                                    self.active_misses.push(out.complete_at);
                                }
                            }
                            Err(MemStall::MshrFull) => break, // retry next cycle
                        }
                    }
                }
                UopKind::Store | UopKind::Branch | UopKind::Nop => {
                    // Runahead stores do not modify memory; branches follow
                    // the trace.
                }
                _ => {
                    if let Some(d) = uop.dest() {
                        let Mode::Runahead(state) = &mut self.mode else {
                            unreachable!()
                        };
                        state.inv.set(d, srcs_valid);
                    }
                }
            }

            let Mode::Runahead(state) = &mut self.mode else {
                unreachable!()
            };
            state.ra_seq += 1;
            fetch_budget -= 1;
            exec_budget -= cost;
            self.stats.runahead_uops += 1;
            if T::ENABLED {
                // Pre-executed slice uops never dispatch into the ROB;
                // record them with the `runahead` flag instead.
                self.sink.emit(TraceEvent::UopDispatched {
                    seq,
                    pc,
                    cycle: self.now,
                    runahead: true,
                });
            }
        }
    }

    fn exit_runahead(&mut self) {
        let Mode::Runahead(state) = &self.mode else {
            return;
        };
        let features = self.features.expect("runahead implies features");
        let blocking_seq = state.blocking_seq;
        if T::ENABLED {
            let entered_at = state.entered_at;
            self.sink.emit(TraceEvent::RunaheadExit {
                cycle: self.now,
                entered_at,
                flushed: features.flush_at_exit,
            });
        }
        self.prdq.clear();
        if features.flush_at_exit {
            // RAR / TR: flush the whole back-end. Everything accumulated
            // during the interval becomes un-ACE; fetch restarts at the
            // blocking load.
            self.flush_all(blocking_seq, self.now + self.cfg.frontend_depth);
        } else {
            // PRE: the ROB was kept; dispatch resumes immediately.
            self.fetch_stall_until = self.fetch_stall_until.max(self.now + 1);
        }
        self.mode = Mode::Normal;
    }

    /// Continuous runahead: a background engine pre-executes stalling
    /// slices of the future stream whenever an LLC miss is outstanding,
    /// without stopping dispatch or entering a mode. Its chain-register
    /// validity is re-derived from the ROB each time the engine restarts
    /// (when dispatch catches up with it or all misses drain).
    fn cre_stage(&mut self) {
        let now = self.now;
        self.active_misses.retain(|&c| c > now);
        if self.active_misses.is_empty() {
            self.cre = None; // engine idles; revalidate on restart
            return;
        }
        // Re-derive chains when dispatch catches up with the engine or at
        // a fixed epoch boundary: the real design regenerates its chain
        // buffer from the core periodically, which also refreshes which
        // registers hold computable values.
        let restart = match &self.cre {
            Some((seq, _)) => *seq < self.next_seq || now - self.cre_epoch_start > 256,
            None => true,
        };
        if restart {
            let mut inv = InvTracker::all_valid();
            for e in self.rob.iter() {
                let pending_miss =
                    e.mem_level == Some(HitLevel::Memory) && e.complete_at.is_some_and(|c| c > now);
                let unknown = e.uop.is_load() && e.complete_at.is_none();
                if pending_miss || unknown {
                    if let Some(d) = e.uop.dest() {
                        inv.invalidate(d);
                    }
                }
            }
            self.cre = Some((self.next_seq, inv));
            self.cre_epoch_start = now;
        }
        // The dedicated engine executes up to 2 slice micro-ops per cycle
        // and skips non-slice ones freely (it replays cached chains, like
        // the runahead buffer), within a bounded lookahead.
        let depth_limit = self.next_seq + self.cfg.max_runahead_depth;
        let mut exec_budget = 2u32;
        let mut skip_budget = 64u32;
        while exec_budget > 0 && skip_budget > 0 {
            let Some((seq, _)) = self.cre else { return };
            if seq >= depth_limit {
                break;
            }
            let uop = self.src.get(seq).clone();
            let pc = uop.pc();
            let in_slice = uop.is_load() || self.sst.contains(pc);
            let Some((seq_ref, inv)) = &mut self.cre else {
                unreachable!()
            };
            if !in_slice {
                if let Some(d) = uop.dest() {
                    inv.invalidate(d);
                }
                *seq_ref += 1;
                skip_budget -= 1;
                continue;
            }
            let srcs_valid = inv.srcs_valid(&uop);
            match uop.kind() {
                UopKind::Load => {
                    if !srcs_valid {
                        if let Some(d) = uop.dest() {
                            inv.invalidate(d);
                        }
                        self.stats.runahead_inv_loads += 1;
                    } else {
                        // The background engine must not starve demand
                        // loads: it leaves a reserve of MSHRs untouched
                        // (the real design has its own resources at the
                        // memory controller).
                        let reserve = 4;
                        if self.mem.outstanding_misses(now) + reserve >= self.mem.config().mshrs {
                            break;
                        }
                        let m = uop.mem().expect("loads carry an address");
                        match self.mem.access(AccessKind::Load, m.addr, pc, now) {
                            Ok(out) => {
                                self.stats.runahead_prefetches += 1;
                                self.mem.note_runahead_load();
                                let Some((_, inv)) = &mut self.cre else {
                                    unreachable!()
                                };
                                if let Some(d) = uop.dest() {
                                    inv.set(d, out.level < HitLevel::Memory);
                                }
                                if out.level == HitLevel::Memory {
                                    self.active_misses.push(out.complete_at);
                                }
                            }
                            Err(MemStall::MshrFull) => break,
                        }
                    }
                }
                UopKind::Store | UopKind::Branch | UopKind::Nop => {}
                _ => {
                    if let Some(d) = uop.dest() {
                        let Some((_, inv)) = &mut self.cre else {
                            unreachable!()
                        };
                        inv.set(d, srcs_valid);
                    }
                }
            }
            let Some((seq_ref, _)) = &mut self.cre else {
                unreachable!()
            };
            *seq_ref += 1;
            exec_budget -= 1;
            self.stats.runahead_uops += 1;
        }
    }

    // ------------------------------------------------------------------
    // Flushes
    // ------------------------------------------------------------------

    /// Squashes every in-flight instruction and restarts fetch at
    /// `refetch_seq`. Squashed occupancy intervals are never reported to
    /// the ACE counter — this is RAR's reliability mechanism.
    fn flush_all(&mut self, refetch_seq: u64, resume_at: u64) {
        self.stats.flushes += 1;
        let squashed = self.rob.len();
        self.stats.squashed += squashed as u64;
        if T::ENABLED || self.fault_active {
            let drained: Vec<Entry> = self.rob.drain_all().collect();
            for e in &drained {
                if T::ENABLED {
                    self.sink.emit(TraceEvent::UopSquashed {
                        seq: e.seq,
                        pc: e.uop.pc(),
                        dispatch: e.dispatch_cycle,
                        cycle: self.now,
                    });
                }
                self.note_squashed_entry(e);
            }
        } else {
            let _ = self.rob.drain_all().count();
        }
        self.rat = self.arch_rat.clone();
        self.prf.reset_free_except(&self.arch_rat.live_regs());
        self.reg_ready.fill(0);
        self.retain_poison(None);
        self.arch_last_writer = [None; ArchReg::total_count()];
        self.iq_count = 0;
        self.lq_count = 0;
        self.sq_count = 0;
        self.fu.reset();
        self.wait_branch = None;
        self.wrong_path_after = None;
        self.next_seq = refetch_seq;
        self.fetch_stall_until = resume_at;
        self.last_ifetch_line = u64::MAX;
        self.head_since = None;
    }

    /// FLUSH (Weaver et al.): squashes everything *behind* the blocking
    /// head and stalls fetch until the access returns plus the refill
    /// penalty.
    fn flush_behind_head(&mut self, head_complete_at: u64) {
        self.stats.flushes += 1;
        let head_seq = self.rob.head().expect("blocking head exists").seq;
        let squashed = self.rob.drain_after(head_seq);
        self.stats.squashed += squashed.len() as u64;
        for e in &squashed {
            if T::ENABLED {
                self.sink.emit(TraceEvent::UopSquashed {
                    seq: e.seq,
                    pc: e.uop.pc(),
                    dispatch: e.dispatch_cycle,
                    cycle: self.now,
                });
            }
            self.note_squashed_entry(e);
        }
        // Roll rename state back to the architectural RAT plus the head's
        // own mapping.
        self.rat = self.arch_rat.clone();
        let head = self.rob.head().expect("head retained");
        let head_dest = head.uop.dest().zip(head.dest_phys);
        let head_complete = head.complete_at;
        let mut live = self.arch_rat.live_regs();
        if let Some((arch, phys)) = head_dest {
            let _ = self.rat.rename(arch, phys);
            live.push(phys);
        }
        self.prf.reset_free_except(&live);
        self.reg_ready.fill(0);
        self.retain_poison(head_dest.map(|(_, phys)| phys));
        if let Some((_, phys)) = head_dest {
            self.reg_ready[phys.flat(self.prf.int_regs())] = head_complete.unwrap_or(0);
        }
        self.arch_last_writer = [None; ArchReg::total_count()];
        if let Some((arch, _)) = head_dest {
            self.arch_last_writer[arch.flat_index()] = Some(head_seq);
        }
        let head = self.rob.head().expect("head retained");
        self.iq_count = usize::from(head.in_iq);
        self.lq_count = usize::from(head.uop.is_load());
        self.sq_count = usize::from(head.uop.is_store());
        self.fu.reset();
        self.wait_branch = None;
        self.wrong_path_after = None;
        self.next_seq = head_seq + 1;
        self.fetch_stall_until = head_complete_at + self.cfg.frontend_depth;
        self.last_ifetch_line = u64::MAX;
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Arms a single-bit fault; it strikes when `now` reaches its cycle.
    /// Only one fault per run is supported (single-event-upset model).
    pub fn arm_fault(&mut self, fault: PlannedFault) {
        self.fault = Some(fault);
        self.fault_active = true;
    }

    /// What the core observed of the armed fault so far.
    #[must_use]
    pub fn fault_report(&self) -> &FaultReport {
        &self.fault_report
    }

    /// Running hash over architecturally observable commits (sequence,
    /// kind, pc, effective memory address, branch outcome, plus poison
    /// markers). Two runs with equal digests executed architecturally
    /// identically.
    #[must_use]
    pub fn commit_digest(&self) -> u64 {
        self.digest
    }

    /// Poisoned physical registers still live (latent faults: corrupted
    /// architectural state that has not reached an observable point).
    #[must_use]
    pub fn latent_poison(&self) -> u64 {
        self.poisoned_regs.iter().filter(|&&p| p != 0).count() as u64
    }

    fn digest_mix(&mut self, w: u64) {
        let mut z = self.digest ^ w;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.digest = z ^ (z >> 31);
    }

    fn update_commit_digest(&mut self, e: &Entry) {
        let mut w = e.seq ^ (e.uop.kind() as u64).rotate_left(17) ^ e.uop.pc().rotate_left(32);
        if let Some(m) = e.uop.mem() {
            w ^= self.effective_addr(e.seq, m.addr).rotate_left(8);
        }
        if let Some(b) = e.uop.branch_info() {
            w ^= (u64::from(b.taken) << 1) ^ b.target.rotate_left(40);
        }
        if e.faulted {
            self.fault_report.corrupt_commits += 1;
            // Only observable corruption perturbs the digest: a wrong
            // load/store address, wrong store data, or a wrong branch
            // condition. A faulted ALU result stays latent until (unless)
            // a dependent observable op consumes it.
            if e.uop.is_load() || e.uop.is_store() || e.uop.is_branch() {
                w ^= 0x5bf0_3635_ded5_3e21u64.rotate_left((e.seq % 63) as u32);
            }
        }
        self.digest_mix(w);
    }

    /// The effective memory address of `seq`, with the injected address
    /// corruption applied when this is the faulted load/store.
    fn effective_addr(&self, seq: u64, addr: u64) -> u64 {
        match self.fault_addr_xor {
            Some((s, x)) if s == seq => addr ^ x,
            _ => addr,
        }
    }

    /// Squash bookkeeping: a squashed faulted entry is architecturally
    /// erased (this is RAR's reliability mechanism observed directly).
    fn note_squashed_entry(&mut self, e: &Entry) {
        if e.faulted {
            self.fault_report.squashed_faulty += 1;
            if self.fault_addr_xor.is_some_and(|(s, _)| s == e.seq) {
                // The corrupted load/store died before its address was
                // consumed; the refetched instance is clean.
                self.fault_addr_xor = None;
            }
        }
    }

    /// After a flush rebuilt the free lists, poison survives only on
    /// registers still live in the architectural RAT (plus `extra`, the
    /// retained head's destination for FLUSH): committed corrupt values
    /// persist, speculative ones are erased.
    fn retain_poison(&mut self, extra: Option<PhysReg>) {
        if !self.fault_active {
            return;
        }
        let int_regs = self.prf.int_regs();
        let mut live = vec![false; self.poisoned_regs.len()];
        for r in self.arch_rat.live_regs() {
            live[r.flat(int_regs)] = true;
        }
        if let Some(p) = extra {
            live[p.flat(int_regs)] = true;
        }
        for (i, l) in live.into_iter().enumerate() {
            if !l {
                self.poisoned_regs[i] = 0;
                self.phys_writer[i] = None;
            }
        }
    }

    fn apply_fault(&mut self) {
        let Some(f) = self.fault.take() else { return };
        let landing = self.strike(f);
        self.fault_report.landing = Some(landing);
    }

    /// Applies the strike to live state. Entry indices address the full
    /// structure, so strikes into unoccupied slots land [`Vacant`] — the
    /// measured vulnerability therefore tracks occupancy exactly like AVF
    /// does (this is what makes the two comparable).
    ///
    /// [`Vacant`]: FaultLanding::Vacant
    fn strike(&mut self, f: PlannedFault) -> FaultLanding {
        match f.target {
            FaultTarget::Rob => {
                let idx = f.entry as usize;
                let seq = self.rob.iter().nth(idx).map(|e| e.seq);
                match seq {
                    Some(seq) => self.strike_rob(seq, f.bit),
                    None => FaultLanding::Vacant,
                }
            }
            FaultTarget::Iq => {
                let idx = f.entry as usize;
                let seq = self.rob.iter().filter(|e| e.in_iq).nth(idx).map(|e| e.seq);
                match seq {
                    Some(seq) => {
                        let e = self.rob.get_mut(seq).expect("selected resident");
                        if f.bit < 2 {
                            // Lost valid bit: the op silently leaves the
                            // scheduler and never issues — the ROB head
                            // eventually wedges (DUE) unless a squash or
                            // RAR's flush erases the entry first.
                            e.in_iq = false;
                            self.iq_count -= 1;
                            FaultLanding::Control
                        } else {
                            e.faulted = true;
                            FaultLanding::Payload
                        }
                    }
                    None => FaultLanding::Vacant,
                }
            }
            FaultTarget::Lq => self.strike_queue(f, true),
            FaultTarget::Sq => self.strike_queue(f, false),
            FaultTarget::RfInt => self.strike_rf(RegClass::Int, f.entry, f.bit),
            FaultTarget::RfFp => self.strike_rf(RegClass::Fp, f.entry, f.bit),
            FaultTarget::Fu => {
                let now = self.now;
                let idx = f.entry as usize;
                let seq = self
                    .rob
                    .iter()
                    .filter(|e| e.exec_start.is_some() && !e.completed(now))
                    .nth(idx)
                    .map(|e| e.seq);
                match seq {
                    Some(seq) => {
                        let int_regs = self.prf.int_regs();
                        let e = self.rob.get_mut(seq).expect("selected resident");
                        e.faulted = true;
                        if let Some(p) = e.dest_phys {
                            self.poisoned_regs[p.flat(int_regs)] = u64::MAX;
                        }
                        FaultLanding::Payload
                    }
                    None => FaultLanding::Vacant,
                }
            }
            FaultTarget::Sst => {
                if self.sst.corrupt_entry(f.entry as usize, f.bit) {
                    FaultLanding::Control
                } else {
                    FaultLanding::Vacant
                }
            }
            FaultTarget::CacheTag => {
                if self.mem.corrupt_l1d_way(f.entry as usize, f.bit) {
                    FaultLanding::Control
                } else {
                    FaultLanding::Vacant
                }
            }
            FaultTarget::Mshr => {
                if self.mem.corrupt_mshr(f.entry as usize, f.bit) {
                    FaultLanding::Control
                } else {
                    FaultLanding::Vacant
                }
            }
        }
    }

    fn strike_rob(&mut self, seq: u64, bit: u64) -> FaultLanding {
        let int_regs = self.prf.int_regs();
        let e = self.rob.get_mut(seq).expect("selected resident");
        match bit {
            0 => {
                e.mispredicted = !e.mispredicted;
                FaultLanding::Control
            }
            1 if e.in_iq => {
                // Lost scheduler valid bit (see the IQ strike).
                e.in_iq = false;
                self.iq_count -= 1;
                FaultLanding::Control
            }
            2..=7 if e.complete_at.is_some() && !e.completed(self.now) => {
                // Completion-time corruption: low flipped bits jitter the
                // wakeup (timing), high ones push completion beyond the
                // cycle budget (a hang the watchdog converts to DUE).
                let c = e.complete_at.expect("checked above") ^ (1 << (4 + 4 * (bit - 2)));
                e.complete_at = Some(c);
                if let Some(p) = e.dest_phys {
                    self.reg_ready[p.flat(int_regs)] = c;
                }
                FaultLanding::Control
            }
            _ => {
                e.faulted = true;
                let issued = e.issue_cycle.is_some();
                if issued {
                    if let Some(p) = e.dest_phys {
                        self.poisoned_regs[p.flat(int_regs)] = u64::MAX;
                    }
                }
                FaultLanding::Payload
            }
        }
    }

    /// LQ (`loads == true`) / SQ strike: address bits arm an address
    /// corruption consumed at issue (loads) or commit drain (stores);
    /// higher bits poison the entry's payload.
    fn strike_queue(&mut self, f: PlannedFault, loads: bool) -> FaultLanding {
        let int_regs = self.prf.int_regs();
        let idx = f.entry as usize;
        let seq = self
            .rob
            .iter()
            .filter(|e| {
                if loads {
                    e.uop.is_load()
                } else {
                    e.uop.is_store()
                }
            })
            .nth(idx)
            .map(|e| e.seq);
        let Some(seq) = seq else {
            return FaultLanding::Vacant;
        };
        let e = self.rob.get_mut(seq).expect("selected resident");
        if f.bit < 48 {
            if loads && e.issue_cycle.is_some() {
                // The load already consumed its address CAM entry; the
                // post-use bits are dead (ACE conservatively counts them,
                // injection measures them masked — the expected gap).
                return FaultLanding::Control;
            }
            e.faulted = true;
            self.fault_addr_xor = Some((seq, 1 << (f.bit % 48)));
            FaultLanding::Control
        } else {
            e.faulted = true;
            if e.issue_cycle.is_some() {
                if let Some(p) = e.dest_phys {
                    self.poisoned_regs[p.flat(int_regs)] = u64::MAX;
                }
            }
            FaultLanding::Payload
        }
    }

    fn strike_rf(&mut self, class: RegClass, entry: u64, bit: u64) -> FaultLanding {
        let reg = PhysReg {
            class,
            index: entry as u16,
        };
        if self.prf.is_free(reg) {
            return FaultLanding::Vacant;
        }
        let flat = reg.flat(self.prf.int_regs());
        if self.reg_ready[flat] == u64::MAX {
            // Allocated but never written: the flipped bit is overwritten
            // at writeback before any consumer can read it.
            return FaultLanding::Vacant;
        }
        // Wider FP registers fold onto the 64-bit poison lane, mirroring
        // the static analysis' mask convention.
        let lane = bit % rar_verify::MASK_BITS;
        self.poisoned_regs[flat] |= 1u64 << lane;
        // Resolve the static stratum for cross-validation: did the
        // bit-liveness analysis predict this exact bit dead? Unknown when
        // the writer is wrong-path or outside the analyzed trace.
        self.fault_report.predicted_dead = match self.phys_writer[flat] {
            Some((seq, false)) => Some(self.refinement.dead_dest_mask(seq) & (1u64 << lane) != 0),
            _ => None,
        };
        FaultLanding::Payload
    }

    // ------------------------------------------------------------------
    // Telemetry
    // ------------------------------------------------------------------

    /// A point-in-time view of the pipeline for tracing/debug tooling.
    #[must_use]
    pub fn snapshot(&self) -> PipelineSnapshot {
        let head = self.rob.head();
        PipelineSnapshot {
            cycle: self.now,
            rob_occupancy: self.rob.len(),
            iq_occupancy: self.iq_count,
            lq_occupancy: self.lq_count,
            sq_occupancy: self.sq_count,
            in_runahead: self.mode.is_runahead(),
            head_seq: head.map(|e| e.seq),
            head_pc: head.map(|e| e.uop.pc()),
            head_completed: head.is_some_and(|e| e.completed(self.now)),
            next_seq: self.next_seq,
            committed: self.stats.committed,
        }
    }

    fn mlp_sample(&mut self) {
        let now = self.now;
        self.active_misses.retain(|&c| c > now);
        let n = self.active_misses.len() as u64;
        if n > 0 {
            self.stats.mlp_sum += n;
            self.stats.mlp_cycles += 1;
        }
    }
}

/// How a budgeted run ([`Core::run_budgeted`]) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunVerdict {
    /// The requested instruction count committed within budget.
    Completed,
    /// The cycle budget was exhausted first — the machine is wedged or
    /// pathologically slow (a fault-injection DUE / sweep timeout).
    CycleBudget,
    /// The wall-clock deadline passed first.
    Deadline,
}

/// A point-in-time view of the pipeline (see [`Core::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSnapshot {
    /// Current cycle.
    pub cycle: u64,
    /// Instructions resident in the ROB.
    pub rob_occupancy: usize,
    /// Instructions waiting in the issue queue.
    pub iq_occupancy: usize,
    /// Loads resident in the load queue.
    pub lq_occupancy: usize,
    /// Stores resident in the store queue.
    pub sq_occupancy: usize,
    /// The core is in runahead mode.
    pub in_runahead: bool,
    /// Sequence number of the oldest instruction.
    pub head_seq: Option<u64>,
    /// PC of the oldest instruction.
    pub head_pc: Option<u64>,
    /// The oldest instruction has completed (awaiting commit).
    pub head_completed: bool,
    /// Next sequence number to dispatch.
    pub next_seq: u64,
    /// Instructions committed so far (since measurement start).
    pub committed: u64,
}

impl Entry {
    fn src_phys_ready(&self, reg_ready: &[u64], int_regs: usize, now: u64) -> bool {
        self.src_phys_cache
            .iter()
            .flatten()
            .all(|p| reg_ready[p.flat(int_regs)] <= now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rar_isa::TraceWindow;

    fn alu_stream() -> impl Iterator<Item = Uop> {
        (0u64..).map(|i| {
            Uop::alu(0x1000 + (i % 64) * 4, UopKind::IntAlu).with_dest(ArchReg::int((i % 8) as u8))
        })
    }

    fn chase_stream() -> impl Iterator<Item = Uop> {
        // A single dependent pointer chain with huge footprint: every load
        // misses and blocks the next.
        let mut addr = 0x1_0000_0000u64;
        (0u64..).map(move |i| {
            if i % 4 == 0 {
                addr = addr
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = 0x1_0000_0000 + (addr % (512 * 1024 * 1024 / 64)) * 64;
                Uop::load(0x1000 + (i % 64) * 4, a, 8)
                    .with_dest(ArchReg::int(0))
                    .with_src(ArchReg::int(0))
            } else if i % 4 == 3 {
                Uop::store(0x1000 + (i % 64) * 4, 0x3000_0000 + (i % 4096) * 8, 8)
            } else if i % 4 == 2 {
                // Dest-less compare so the ROB can fill before the PRF;
                // independent of the chase so the IQ drains.
                Uop::alu(0x1000 + (i % 64) * 4, UopKind::IntAlu).with_src(ArchReg::int(9))
            } else {
                Uop::alu(0x1000 + (i % 64) * 4, UopKind::IntAlu)
                    .with_dest(ArchReg::int(1 + (i % 4) as u8))
                    .with_src(ArchReg::int(1 + (i % 4) as u8))
            }
        })
    }

    fn stream_loads() -> impl Iterator<Item = Uop> {
        // Independent streaming loads: plenty of MLP for the OoO core.
        // Every third micro-op is a (dest-less) store so the ROB can fill
        // before the physical register file runs out, as in real code.
        (0u64..).map(|i| {
            let pc = 0x1000 + (i % 60) * 4;
            match i % 3 {
                0 => {
                    // 8-byte elements: one new 64-byte line (miss) every 8
                    // loads = every 24 micro-ops, so the 192-entry window
                    // exposes ~8 concurrent misses and runahead has MSHR
                    // headroom to add more.
                    let a = 0x1_0000_0000 + (i / 3) * 8;
                    Uop::load(pc, a, 8).with_dest(ArchReg::int((i % 8) as u8))
                }
                1 => Uop::alu(pc, UopKind::IntAlu).with_dest(ArchReg::int(8 + (i % 8) as u8)),
                _ => Uop::store(pc, 0x3000_0000 + (i % 4096) * 8, 8),
            }
        })
    }

    fn core_with<T: Iterator<Item = Uop>>(technique: Technique, stream: T) -> Core<TraceWindow<T>> {
        Core::new(
            CoreConfig::baseline(),
            MemConfig::baseline(),
            technique,
            TraceWindow::new(stream),
        )
    }

    #[test]
    fn alu_throughput_near_width_limit() {
        let mut core = core_with(Technique::Ooo, alu_stream());
        core.run_until_committed(20_000);
        // 3 int adders bound IPC at 3.
        let ipc = core.stats().ipc();
        assert!(ipc > 2.0 && ipc <= 3.1, "ipc = {ipc}");
    }

    #[test]
    fn chase_workload_is_memory_bound() {
        let mut core = core_with(Technique::Ooo, chase_stream());
        core.run_until_committed(3_000);
        let ipc = core.stats().ipc();
        assert!(ipc < 0.25, "dependent misses should crush IPC, got {ipc}");
        assert!(core.stats().head_blocked_cycles > core.stats().cycles / 2);
    }

    #[test]
    fn streaming_exploits_mlp() {
        let mut core = core_with(Technique::Ooo, stream_loads());
        core.run_until_committed(10_000);
        assert!(core.stats().mlp() > 1.5, "mlp = {}", core.stats().mlp());
    }

    #[test]
    fn ooo_accumulates_ace_bits() {
        let mut core = core_with(Technique::Ooo, chase_stream());
        core.run_until_committed(2_000);
        assert!(core.ace().total_abc() > 0);
        assert!(core.ace().abc(Structure::Rob) > 0);
        // ROB dominates for memory-bound code (Figure 3).
        assert!(core.ace().abc(Structure::Rob) > core.ace().abc(Structure::Sq));
    }

    #[test]
    fn rar_triggers_runahead_on_chase() {
        let mut core = core_with(Technique::Rar, chase_stream());
        core.run_until_committed(3_000);
        assert!(
            core.stats().runahead_intervals > 0,
            "RAR must enter runahead"
        );
        assert!(core.stats().flushes >= core.stats().runahead_intervals);
    }

    #[test]
    fn rar_reduces_abc_versus_ooo() {
        let mut ooo = core_with(Technique::Ooo, chase_stream());
        ooo.run_until_committed(3_000);
        let mut rar = core_with(Technique::Rar, chase_stream());
        rar.run_until_committed(3_000);
        let (a, b) = (ooo.ace().total_abc(), rar.ace().total_abc());
        assert!(b < a / 2, "RAR should slash ACE bits: ooo={a}, rar={b}");
    }

    #[test]
    fn pre_keeps_rob_state_vulnerable() {
        let mut pre = core_with(Technique::Pre, stream_loads());
        pre.run_until_committed(5_000);
        let mut rar = core_with(Technique::Rar, stream_loads());
        rar.run_until_committed(5_000);
        assert!(
            rar.ace().total_abc() < pre.ace().total_abc(),
            "flush-at-exit must reduce exposed state"
        );
    }

    #[test]
    fn pre_improves_streaming_performance() {
        let mut ooo = core_with(Technique::Ooo, stream_loads());
        ooo.run_until_committed(8_000);
        let mut pre = core_with(Technique::Pre, stream_loads());
        pre.run_until_committed(8_000);
        assert!(
            pre.stats().ipc() > ooo.stats().ipc(),
            "PRE should speed up streaming: ooo={}, pre={}",
            ooo.stats().ipc(),
            pre.stats().ipc()
        );
    }

    #[test]
    fn flush_kills_mlp() {
        let mut ooo = core_with(Technique::Ooo, stream_loads());
        ooo.run_until_committed(5_000);
        let mut fl = core_with(Technique::Flush, stream_loads());
        fl.run_until_committed(5_000);
        assert!(fl.stats().mlp() < ooo.stats().mlp());
        // The miss-detection timer lets a few younger misses issue before
        // the flush, so FLUSH reduces MLP without collapsing it; on this
        // MSHR-saturated stream the IPC effect is small (the suite-level
        // penalty is asserted in the integration tests).
        let ratio = fl.stats().ipc() / ooo.stats().ipc();
        assert!((0.5..=1.15).contains(&ratio), "FLUSH/OoO IPC ratio {ratio}");
        assert!(fl.stats().flushes > 0);
    }

    #[test]
    fn flush_reduces_abc() {
        let mut ooo = core_with(Technique::Ooo, chase_stream());
        ooo.run_until_committed(3_000);
        let mut fl = core_with(Technique::Flush, chase_stream());
        fl.run_until_committed(3_000);
        assert!(fl.ace().total_abc() < ooo.ace().total_abc());
    }

    #[test]
    fn early_triggers_more_intervals_than_late() {
        let mut rar = core_with(Technique::Rar, chase_stream());
        rar.run_until_committed(3_000);
        let mut late = core_with(Technique::RarLate, chase_stream());
        late.run_until_committed(3_000);
        assert!(
            rar.stats().runahead_intervals >= late.stats().runahead_intervals,
            "early start must trigger at least as often"
        );
    }

    #[test]
    fn committed_instruction_count_is_exact() {
        let mut core = core_with(Technique::Rar, stream_loads());
        core.run_until_committed(4_321);
        assert!(core.stats().committed >= 4_321);
        assert!(core.stats().committed < 4_321 + core.config().width as u64);
    }

    #[test]
    fn reset_measurement_keeps_warm_state() {
        let mut core = core_with(Technique::Ooo, stream_loads());
        core.run_until_committed(2_000);
        core.reset_measurement();
        assert_eq!(core.stats().committed, 0);
        assert_eq!(core.ace().total_abc(), 0);
        core.run_until_committed(1_000);
        assert!(core.stats().ipc() > 0.0);
    }

    #[test]
    fn wrong_path_mode_squashes_and_stays_unace() {
        let mk = |wp: bool| {
            let cfg = CoreConfig {
                model_wrong_path: wp,
                ..CoreConfig::baseline()
            };
            let mut core = Core::new(
                cfg,
                MemConfig::baseline(),
                Technique::Ooo,
                TraceWindow::new(mispredicting_stream()),
            );
            core.run_until_committed(4_000);
            (
                core.stats().squashed,
                core.stats().ipc(),
                core.ace().total_abc(),
            )
        };
        let (squashed_off, _, _) = mk(false);
        let (squashed_on, ipc_on, _) = mk(true);
        assert_eq!(squashed_off, 0, "bubble model squashes nothing");
        assert!(
            squashed_on > 100,
            "wrong-path uops must be dispatched and squashed"
        );
        assert!(ipc_on > 0.0);
    }

    fn mispredicting_stream() -> impl Iterator<Item = Uop> {
        // Hard 50/50 branches every 8 uops: plenty of wrong-path episodes.
        let mut x = 9u64;
        (0u64..).map(move |i| {
            let pc = 0x1000 + (i % 64) * 4;
            if i % 8 == 7 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let taken = (x >> 33) & 1 == 1;
                Uop::branch(
                    pc,
                    rar_isa::BranchInfo {
                        taken,
                        target: pc + 4,
                        class: rar_isa::BranchClass::Conditional,
                    },
                )
            } else if i % 8 == 3 {
                Uop::store(pc, 0x3000_0000 + (i % 512) * 8, 8)
            } else {
                Uop::alu(pc, UopKind::IntAlu).with_dest(ArchReg::int((i % 8) as u8))
            }
        })
    }

    #[test]
    fn windows_track_blocked_head() {
        let mut core = core_with(Technique::Ooo, chase_stream());
        core.run_until_committed(2_000);
        assert!(core.ace().window_count(StallKind::RobHeadBlocked) > 0);
        assert!(
            core.ace().window_cycles(StallKind::RobHeadBlocked)
                >= core.ace().window_cycles(StallKind::FullRobStall)
        );
    }

    #[test]
    fn stall_profile_conserves_cycles_and_attributes_dram() {
        for technique in [Technique::Ooo, Technique::Rar] {
            let mut core = core_with(technique, chase_stream());
            core.enable_stall_profiling();
            core.run_until_committed(2_000);
            let profile = core.stall_profile().expect("profiling enabled");
            assert_eq!(
                profile.total(),
                core.stats().cycles,
                "{technique:?}: stall buckets must sum to total cycles"
            );
            // The chase is memory-bound: the DRAM/quiescent/runahead share
            // must dominate outright retiring.
            let waiting = profile.count(StallBucket::DramWait)
                + profile.count(StallBucket::Quiescent)
                + profile.count(StallBucket::Runahead)
                + profile.count(StallBucket::RobFull);
            assert!(
                waiting > profile.count(StallBucket::Retiring),
                "{technique:?}: memory-bound chase should mostly wait"
            );
            // Occupancy rows sample once per cycle each.
            for (row, _) in crate::stall::OCC_STRUCTURES.iter().enumerate() {
                let samples: u64 = profile.occupancy[row].iter().sum();
                assert_eq!(samples, core.stats().cycles);
            }
        }
    }

    #[test]
    fn stall_profiled_run_is_bit_identical() {
        let mut plain = core_with(Technique::Rar, chase_stream());
        plain.run_until_committed(2_000);
        let mut profiled = core_with(Technique::Rar, chase_stream());
        profiled.enable_stall_profiling();
        profiled.run_until_committed(2_000);
        assert_eq!(plain.stats(), profiled.stats());
        assert_eq!(plain.ace().total_abc(), profiled.ace().total_abc());
    }

    #[test]
    fn stall_profile_resets_with_measurement() {
        let mut core = core_with(Technique::Ooo, alu_stream());
        core.enable_stall_profiling();
        core.run_until_committed(1_000);
        assert!(core.stall_profile().expect("enabled").total() > 0);
        core.reset_measurement();
        let profile = core.stall_profile().expect("survives reset");
        assert_eq!(profile.total(), 0);
        core.run_until_committed(500);
        assert_eq!(
            core.stall_profile().expect("enabled").total(),
            core.stats().cycles
        );
    }

    #[test]
    fn alu_stream_mostly_retires() {
        let mut core = core_with(Technique::Ooo, alu_stream());
        core.enable_stall_profiling();
        core.run_until_committed(10_000);
        let profile = core.stall_profile().expect("profiling enabled");
        assert!(
            profile.count(StallBucket::Retiring) > profile.total() / 2,
            "independent ALU ops should retire most cycles"
        );
    }
}
