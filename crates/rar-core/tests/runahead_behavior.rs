//! Behavioural tests of the runahead engine, trigger policies, and the
//! extension techniques, driven through the public `Core` API with
//! hand-built instruction streams.

use rar_core::{Core, CoreConfig, Technique};
use rar_isa::{ArchReg, TraceWindow, Uop, UopKind};
use rar_mem::MemConfig;

/// Streaming loads with stores so the ROB can fill: one LLC miss every
/// ~24 micro-ops.
fn streaming() -> impl Iterator<Item = Uop> {
    (0u64..).map(|i| {
        let pc = 0x1000 + (i % 60) * 4;
        match i % 3 {
            0 => {
                let a = 0x1_0000_0000 + (i / 3) * 8;
                Uop::load(pc, a, 8).with_dest(ArchReg::int((i % 8) as u8))
            }
            1 => Uop::alu(pc, UopKind::IntAlu).with_dest(ArchReg::int(8 + (i % 8) as u8)),
            _ => Uop::store(pc, 0x3000_0000 + (i % 4096) * 8, 8),
        }
    })
}

/// A single dependent pointer chain: every fourth micro-op is a chase
/// load; the rest are independent fillers.
fn chasing() -> impl Iterator<Item = Uop> {
    let mut addr = 0x1_0000_0000u64;
    (0u64..).map(move |i| {
        let pc = 0x1000 + (i % 64) * 4;
        if i % 4 == 0 {
            addr = addr
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = 0x1_0000_0000 + (addr % (256 * 1024 * 1024 / 64)) * 64;
            Uop::load(pc, a, 8)
                .with_dest(ArchReg::int(0))
                .with_src(ArchReg::int(0))
        } else if i % 4 == 2 {
            Uop::alu(pc, UopKind::IntAlu).with_src(ArchReg::int(9))
        } else if i % 4 == 3 {
            Uop::store(pc, 0x3000_0000 + (i % 4096) * 8, 8)
        } else {
            Uop::alu(pc, UopKind::IntAlu)
                .with_dest(ArchReg::int(1 + (i % 4) as u8))
                .with_src(ArchReg::int(1 + (i % 4) as u8))
        }
    })
}

fn run<I: Iterator<Item = Uop>>(technique: Technique, stream: I, n: u64) -> Core<TraceWindow<I>> {
    let mut core = Core::new(
        CoreConfig::baseline(),
        MemConfig::baseline(),
        technique,
        TraceWindow::new(stream),
    );
    core.run_until_committed(n);
    core
}

#[test]
fn pre_exits_without_flushing() {
    let core = run(Technique::Pre, streaming(), 8_000);
    assert!(core.stats().runahead_intervals > 0, "PRE must speculate");
    assert_eq!(core.stats().flushes, 0, "PRE never flushes");
    assert_eq!(core.stats().squashed, 0, "nothing squashed without flushes");
}

#[test]
fn rar_flushes_once_per_interval() {
    let core = run(Technique::Rar, streaming(), 8_000);
    assert!(core.stats().runahead_intervals > 0);
    assert_eq!(
        core.stats().flushes,
        core.stats().runahead_intervals,
        "every RAR interval ends in exactly one flush"
    );
    assert!(
        core.stats().squashed > 0,
        "the frozen ROB contents get squashed"
    );
}

#[test]
fn chase_loads_stay_inv_during_runahead() {
    let core = run(Technique::Rar, chasing(), 4_000);
    assert!(core.stats().runahead_intervals > 0);
    assert!(
        core.stats().runahead_inv_loads > 0,
        "dependent chase loads cannot be prefetched — their addresses are INV"
    );
}

#[test]
fn streaming_loads_prefetch_during_runahead() {
    let core = run(Technique::Rar, streaming(), 8_000);
    assert!(
        core.stats().runahead_prefetches > core.stats().runahead_inv_loads,
        "independent streams prefetch: {} prefetches vs {} INV",
        core.stats().runahead_prefetches,
        core.stats().runahead_inv_loads
    );
}

#[test]
fn runahead_buffer_matches_or_beats_pre_performance() {
    // RAB replays chains without front-end fetch, so it prefetches at
    // least as deeply as PRE per interval (it races to the MSHR limit);
    // end-to-end it must perform at least comparably on streaming code,
    // and like PRE it never flushes.
    let pre = run(Technique::Pre, streaming(), 8_000);
    let rab = run(Technique::Rab, streaming(), 8_000);
    assert!(rab.stats().runahead_intervals > 0);
    assert_eq!(rab.stats().flushes, 0, "RAB keeps the ROB like PRE");
    assert!(
        rab.stats().ipc() >= pre.stats().ipc() * 0.95,
        "RAB {:.3} IPC vs PRE {:.3} IPC",
        rab.stats().ipc(),
        pre.stats().ipc()
    );
}

#[test]
fn throttle_caps_rob_occupancy() {
    let cfg = CoreConfig::baseline();
    let bound = (cfg.throttle_occupancy_bound * cfg.rob_size as f64) as usize;
    let mut core = Core::new(
        cfg,
        MemConfig::baseline(),
        Technique::Throttle,
        TraceWindow::new(streaming()),
    );
    let mut peak = 0;
    for _ in 0..30_000 {
        core.cycle();
        peak = peak.max(core.snapshot().rob_occupancy);
        if core.stats().committed > 6_000 {
            break;
        }
    }
    // Dispatch stops once at/over the bound, so occupancy may overshoot
    // by at most one dispatch group.
    assert!(
        peak <= bound + core.config().width,
        "occupancy {peak} exceeded bound {bound}"
    );
}

#[test]
fn countdown_timer_threshold_is_respected() {
    // With an enormous threshold, the early trigger degenerates to the
    // late one: RAR must not out-trigger RAR-LATE.
    let slow = CoreConfig {
        runahead_timer: 100_000,
        ..CoreConfig::baseline()
    };
    let mut rar_slow = Core::new(
        slow,
        MemConfig::baseline(),
        Technique::Rar,
        TraceWindow::new(chasing()),
    );
    rar_slow.run_until_committed(3_000);
    let late = run(Technique::RarLate, chasing(), 3_000);
    assert!(
        rar_slow.stats().runahead_intervals <= late.stats().runahead_intervals + 2,
        "disabled timer must not trigger more than the late policy: {} vs {}",
        rar_slow.stats().runahead_intervals,
        late.stats().runahead_intervals
    );
}

#[test]
fn min_benefit_filter_blocks_short_intervals() {
    // If runahead requires more remaining latency than any miss has,
    // it never triggers.
    let cfg = CoreConfig {
        min_runahead_benefit: 1_000_000,
        ..CoreConfig::baseline()
    };
    let mut core = Core::new(
        cfg,
        MemConfig::baseline(),
        Technique::Rar,
        TraceWindow::new(streaming()),
    );
    core.run_until_committed(5_000);
    assert_eq!(core.stats().runahead_intervals, 0);
}

#[test]
fn snapshot_reports_runahead_mode() {
    let mut core = Core::new(
        CoreConfig::baseline(),
        MemConfig::baseline(),
        Technique::Rar,
        TraceWindow::new(streaming()),
    );
    let mut saw_runahead = false;
    for _ in 0..60_000 {
        core.cycle();
        if core.snapshot().in_runahead {
            saw_runahead = true;
            break;
        }
    }
    assert!(saw_runahead, "snapshot must expose runahead mode");
}

#[test]
fn commit_monotone_and_cycle_accurate() {
    let mut core = Core::new(
        CoreConfig::baseline(),
        MemConfig::baseline(),
        Technique::Rar,
        TraceWindow::new(streaming()),
    );
    let mut last = 0;
    for _ in 0..5_000 {
        core.cycle();
        let s = core.snapshot();
        assert!(s.committed >= last, "commit counter must be monotone");
        assert!(
            s.committed - last <= core.config().width as u64,
            "bounded by commit width"
        );
        last = s.committed;
    }
}

#[test]
fn continuous_runahead_prefetches_without_a_mode() {
    let core = run(Technique::Cre, streaming(), 8_000);
    assert_eq!(
        core.stats().runahead_intervals,
        0,
        "CRE never enters a mode"
    );
    assert_eq!(core.stats().flushes, 0);
    assert!(
        core.stats().runahead_prefetches > 0,
        "the background engine must issue prefetches"
    );
    let base = run(Technique::Ooo, streaming(), 8_000);
    assert!(
        core.stats().ipc() > base.stats().ipc(),
        "CRE {:.3} IPC should beat OoO {:.3}",
        core.stats().ipc(),
        base.stats().ipc()
    );
}

#[test]
fn vector_runahead_flushes_and_performs() {
    let vr = run(Technique::Vr, streaming(), 8_000);
    assert!(vr.stats().runahead_intervals > 0);
    assert_eq!(
        vr.stats().flushes,
        vr.stats().runahead_intervals,
        "VR flushes at exit like traditional runahead"
    );
    let base = run(Technique::Ooo, streaming(), 8_000);
    assert!(
        vr.stats().ipc() > base.stats().ipc(),
        "VR {:.3} IPC vs OoO {:.3}",
        vr.stats().ipc(),
        base.stats().ipc()
    );
}
