// Gated: needs the external `proptest` crate, which offline builds cannot
// resolve. Restore the dev-dependency and run with `--features proptests`.
#![cfg(feature = "proptests")]
//! End-to-end property tests: random workload parameters and techniques
//! through the full core, asserting cross-cutting invariants that must
//! hold for *any* configuration.

use proptest::prelude::*;
use rar_ace::Structure;
use rar_core::{Core, CoreConfig, Technique};
use rar_isa::TraceWindow;
use rar_mem::MemConfig;
use rar_workloads::{AccessPattern, TraceGenerator, WorkloadClass, WorkloadParams};

fn arbitrary_workload() -> impl Strategy<Value = WorkloadParams> {
    (
        0.1f64..0.35,
        0.02f64..0.2,
        0.02f64..0.2,
        0.0f64..0.7,
        0.0f64..0.5,
        0.0f64..0.8,
        2u32..48,
        2usize..10,
        12usize..48,
    )
        .prop_map(
            |(load, store, branch, miss, hard, fp, trip, segments, body)| WorkloadParams {
                class: WorkloadClass::MemoryIntensive,
                load_frac: load,
                store_frac: store,
                branch_frac: branch,
                miss_load_frac: miss,
                hard_branch_frac: hard,
                fp_frac: fp,
                loop_trip: trip,
                segments,
                body_uops: body,
                pattern: AccessPattern::Mixed {
                    chase_frac: 0.4,
                    chains: 2,
                    streams: 3,
                    stride: 8,
                },
                ..WorkloadParams::base("prop-core")
            },
        )
        .prop_filter("valid workloads only", |p| p.validate().is_ok())
}

fn technique_strategy() -> impl Strategy<Value = Technique> {
    prop::sample::select(Technique::EXTENDED.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (workload, technique) pair makes forward progress, keeps its
    /// counters consistent, and never exposes more state than the
    /// structures can hold.
    #[test]
    fn core_invariants_hold_for_any_config(
        params in arbitrary_workload(),
        technique in technique_strategy(),
        seed in 0u64..512,
    ) {
        let cfg = CoreConfig::baseline();
        let caps = cfg.capacities();
        let mut core = Core::new(
            cfg,
            MemConfig::baseline(),
            technique,
            TraceWindow::new(TraceGenerator::new(&params, seed)),
        );
        core.run_until_committed(2_500);
        let s = *core.stats();

        // Progress and counter sanity.
        prop_assert!(s.committed >= 2_500);
        prop_assert!(s.cycles > 0);
        prop_assert!(s.committed <= s.dispatched, "cannot commit what was never dispatched");
        prop_assert!(s.issued <= s.dispatched);

        // ACE accounting: per-structure totals sum to the whole, and no
        // structure exceeds its capacity-time envelope.
        let ace = core.ace();
        let by: u128 = Structure::ALL.iter().map(|&st| ace.abc(st)).sum();
        prop_assert_eq!(by, ace.total_abc());
        for st in Structure::ALL {
            // FU entries are transient (width x latency), every other
            // structure is bounded by capacity x elapsed cycles.
            if st != Structure::Fu {
                prop_assert!(
                    ace.abc(st) <= u128::from(caps.bits(st)) * u128::from(s.cycles),
                    "{st} exceeded its capacity-time envelope"
                );
            }
        }

        // Runahead bookkeeping is consistent with the technique.
        if !technique.is_runahead() {
            prop_assert_eq!(s.runahead_intervals, 0);
        }
        if technique == Technique::Ooo || technique == Technique::Pre {
            prop_assert_eq!(s.flushes, 0);
        }
        let report = core.reliability_report();
        prop_assert!((0.0..=1.0).contains(&report.avf()), "AVF {}", report.avf());
    }

    /// Interval logging never changes the accounting, only records it.
    #[test]
    fn logging_is_observation_only(
        params in arbitrary_workload(),
        technique in technique_strategy(),
    ) {
        let mk = |log: bool| {
            let mut core = Core::new(
                CoreConfig::baseline(),
                MemConfig::baseline(),
                technique,
                TraceWindow::new(TraceGenerator::new(&params, 9)),
            );
            if log {
                core.enable_ace_logging();
            }
            core.run_until_committed(1_500);
            (core.stats().cycles, core.ace().total_abc(), core.ace().interval_log().len())
        };
        let (cycles_a, abc_a, log_a) = mk(false);
        let (cycles_b, abc_b, log_b) = mk(true);
        prop_assert_eq!(cycles_a, cycles_b);
        prop_assert_eq!(abc_a, abc_b);
        prop_assert_eq!(log_a, 0);
        prop_assert!(log_b > 0);
    }
}
