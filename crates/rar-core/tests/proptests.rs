// Gated: needs the external `proptest` crate, which offline builds cannot
// resolve. Restore the dev-dependency and run with `--features proptests`.
#![cfg(feature = "proptests")]
//! Property tests for the core's bookkeeping structures: register
//! conservation, ROB algebra, FU port limits, SST behaviour.

use proptest::prelude::*;
use rar_core::fu::FuPool;
use rar_core::regfile::{PhysReg, PhysRegFile, Rat};
use rar_core::rob::{Entry, Rob};
use rar_core::sst::{Prdq, Sst};
use rar_core::FuConfig;
use rar_isa::{ArchReg, RegClass, Uop, UopKind};

fn entry(seq: u64) -> Entry {
    Entry {
        seq,
        uop: Uop::alu(seq * 4, UopKind::IntAlu),
        dispatch_cycle: seq,
        issue_cycle: None,
        exec_start: None,
        complete_at: None,
        dest_phys: None,
        old_phys: None,
        mem_level: None,
        mispredicted: false,
        in_iq: true,
        src_writers: [None, None],
        src_phys_cache: [None, None],
        wrong_path: false,
        fu_latency: 1,
    }
}

proptest! {
    /// Physical registers are conserved across arbitrary rename/commit
    /// interleavings: free + RAT-mapped + in-flight-old == total.
    #[test]
    fn register_conservation(ops in prop::collection::vec((0u8..32, any::<bool>()), 1..200)) {
        let total = 64usize;
        let mut prf = PhysRegFile::new(total, total);
        let mut rat = Rat::new(&mut prf);
        let mut in_flight: Vec<PhysReg> = Vec::new();
        for &(arch_idx, commit_first) in &ops {
            if commit_first && !in_flight.is_empty() {
                prf.free(in_flight.remove(0));
            }
            if let Some(fresh) = prf.alloc(RegClass::Int) {
                in_flight.push(rat.rename(ArchReg::int(arch_idx), fresh));
            }
            let live_int = rat.live_regs().iter().filter(|r| r.class == RegClass::Int).count();
            prop_assert_eq!(
                prf.free_count(RegClass::Int) + live_int + in_flight.len(),
                total
            );
        }
    }

    /// drain_after(k) partitions the ROB: survivors are exactly the
    /// sequences <= k, squashed are the rest, both in order.
    #[test]
    fn rob_drain_after_partitions(n in 1usize..64, keep in 0u64..80) {
        let mut rob = Rob::new(64);
        for s in 0..n as u64 {
            rob.push(entry(s));
        }
        let squashed = rob.drain_after(keep);
        for (i, e) in squashed.iter().enumerate() {
            prop_assert_eq!(e.seq, keep + 1 + i as u64);
        }
        prop_assert_eq!(rob.len() + squashed.len(), n);
        if let Some(h) = rob.head() {
            prop_assert_eq!(h.seq, 0);
        }
        for s in 0..n as u64 {
            prop_assert_eq!(rob.get(s).is_some(), s <= keep);
        }
    }

    /// The FU pool never grants more issues per cycle than it has units
    /// of the requested kind.
    #[test]
    fn fu_ports_bounded(kinds in prop::collection::vec(0u8..6, 1..64), cycles in 1u64..8) {
        let cfg = FuConfig::baseline();
        let mut pool = FuPool::new(&cfg);
        for now in 0..cycles {
            let mut granted = [0usize; 6];
            for &k in &kinds {
                let kind = [
                    UopKind::IntAlu,
                    UopKind::IntMul,
                    UopKind::IntDiv,
                    UopKind::FpAdd,
                    UopKind::FpMul,
                    UopKind::FpDiv,
                ][k as usize];
                if pool.try_issue(kind, now * 100) {
                    granted[k as usize] += 1;
                }
            }
            prop_assert!(granted[0] <= cfg.int_add);
            prop_assert!(granted[1] <= cfg.int_mul);
            prop_assert!(granted[2] <= cfg.int_div);
            prop_assert!(granted[3] <= cfg.fp_add);
            prop_assert!(granted[4] <= cfg.fp_mul);
            prop_assert!(granted[5] <= cfg.fp_div);
        }
    }

    /// The SST behaves as a set with LRU eviction: membership after a
    /// series of inserts is decided by the last `capacity` distinct PCs.
    #[test]
    fn sst_is_a_bounded_set(pcs in prop::collection::vec(0u64..32, 1..128), cap in 1usize..16) {
        let mut sst = Sst::new(cap);
        for &pc in &pcs {
            sst.insert(pc * 4);
        }
        prop_assert!(sst.len() <= cap);
        // The most recent insert is always resident.
        let last = pcs[pcs.len() - 1] * 4;
        prop_assert!(sst.contains(last));
    }

    /// The PRDQ admits at most `capacity` concurrently-live entries.
    #[test]
    fn prdq_capacity_respected(
        cap in 1usize..16,
        ops in prop::collection::vec((0u64..64, 1u64..32), 1..96),
    ) {
        let mut q = Prdq::new(cap);
        let mut admitted_live: Vec<u64> = Vec::new();
        for &(now, lat) in &ops {
            admitted_live.retain(|&r| r > now);
            if q.try_push(now, now + lat) {
                admitted_live.push(now + lat);
            }
            prop_assert!(admitted_live.len() <= cap);
        }
        prop_assert!(q.peak() <= cap);
    }
}
