// Gated: needs the external `proptest` crate, which offline builds cannot
// resolve. Restore the dev-dependency and run with `--features proptests`.
#![cfg(feature = "proptests")]
//! Property tests for branch prediction structures.

use proptest::prelude::*;
use rar_frontend::{BranchPredictor, Btb, LoopPredictor, Tage, TageConfig};

proptest! {
    /// The BTB always returns the most recent target installed for a PC.
    #[test]
    fn btb_returns_latest_target(ops in prop::collection::vec((0u64..64, 0u64..1_000), 1..200)) {
        let mut btb = Btb::new(256, 4); // large enough not to evict 64 pcs
        let mut last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &(pc, target) in &ops {
            btb.update(pc * 4, target);
            last.insert(pc * 4, target);
        }
        for (&pc, &target) in &last {
            prop_assert_eq!(btb.lookup(pc), Some(target));
        }
    }

    /// TAGE update never panics and predictions are total for arbitrary
    /// outcome sequences.
    #[test]
    fn tage_is_total(outcomes in prop::collection::vec(any::<bool>(), 1..512), pc in 0u64..1u64 << 40) {
        let mut t = Tage::new(TageConfig::budget_8kb());
        for &o in &outcomes {
            let p = t.predict(pc);
            t.update(pc, p, o);
        }
    }

    /// On a fully-biased branch, the composed predictor converges to
    /// near-perfect accuracy regardless of PC.
    #[test]
    fn predictor_learns_any_biased_site(pc in 0u64..1u64 << 40, taken: bool) {
        let mut bp = BranchPredictor::tage_sc_l_8kb();
        for _ in 0..128 {
            let _ = bp.predict(pc);
            bp.update(pc, taken, pc ^ 0xff0);
        }
        let before = bp.stats().mispredictions;
        for _ in 0..64 {
            let _ = bp.predict(pc);
            bp.update(pc, taken, pc ^ 0xff0);
        }
        prop_assert_eq!(bp.stats().mispredictions - before, 0);
    }

    /// The loop predictor predicts any fixed trip count exactly after two
    /// confirmations.
    #[test]
    fn loop_predictor_exact_for_any_trip(trip in 2usize..200) {
        let mut lp = LoopPredictor::new(8);
        for _ in 0..3 {
            for i in 0..trip {
                lp.update(0x40, i != trip - 1);
            }
        }
        for i in 0..trip {
            let expect = i != trip - 1;
            prop_assert_eq!(lp.predict(0x40), Some(expect), "iteration {} of {}", i, trip);
            lp.update(0x40, expect);
        }
    }
}
