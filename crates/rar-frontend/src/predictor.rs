//! The composed TAGE-SC-L predictor with BTB.

use crate::btb::Btb;
use crate::loop_pred::LoopPredictor;
use crate::sc::StatisticalCorrector;
use crate::tage::{Tage, TageConfig, TagePrediction};

/// A full fetch-time prediction.
#[derive(Debug, Clone, Copy)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target if taken and the BTB hit.
    pub target: Option<u64>,
    /// Internal TAGE state threaded to the update.
    tage: TagePrediction,
    /// Which component produced the final direction.
    from_loop: bool,
}

impl Prediction {
    /// True when the loop predictor (rather than TAGE-SC) supplied the
    /// direction.
    #[must_use]
    pub fn from_loop_predictor(&self) -> bool {
        self.from_loop
    }
}

/// Aggregate prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Conditional-branch predictions made.
    pub predictions: u64,
    /// Direction mispredictions.
    pub mispredictions: u64,
    /// Taken branches whose target missed in the BTB.
    pub btb_misses: u64,
}

impl PredictorStats {
    /// Mispredictions per kilo-prediction.
    #[must_use]
    pub fn mpki_of(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.mispredictions as f64 * 1000.0 / instructions as f64
    }

    /// Direction accuracy in [0, 1].
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            return 1.0;
        }
        1.0 - self.mispredictions as f64 / self.predictions as f64
    }
}

/// TAGE-SC-L + BTB, the front-end predictor of the baseline core.
///
/// Call [`BranchPredictor::predict`] at fetch and
/// [`BranchPredictor::update`] at branch resolution with the true outcome.
///
/// # Examples
///
/// ```
/// use rar_frontend::BranchPredictor;
/// let mut bp = BranchPredictor::tage_sc_l_8kb();
/// let p = bp.predict(0x400);
/// bp.update(0x400, true, 0x800);
/// assert!(bp.stats().predictions >= 1);
/// let _ = p;
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    tage: Tage,
    loop_pred: LoopPredictor,
    sc: StatisticalCorrector,
    btb: Btb,
    stats: PredictorStats,
    /// Prediction awaiting update, keyed by pc (single outstanding per pc
    /// is sufficient for the in-order fetch/in-order resolve usage).
    pending: Option<(u64, Prediction)>,
}

impl BranchPredictor {
    /// Builds the paper's 8 KB TAGE-SC-L with a 2K-entry BTB.
    #[must_use]
    pub fn tage_sc_l_8kb() -> Self {
        BranchPredictor {
            tage: Tage::new(TageConfig::budget_8kb()),
            loop_pred: LoopPredictor::new(32),
            sc: StatisticalCorrector::new(10),
            btb: Btb::new(512, 4),
            stats: PredictorStats::default(),
            pending: None,
        }
    }

    /// Predicts direction and target for the conditional branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> Prediction {
        let tage = self.tage.predict(pc);
        let (taken, from_loop) = match self.loop_pred.predict(pc) {
            Some(t) => (t, true),
            None => (self.sc.correct(pc, tage.taken, tage.weak), false),
        };
        let target = if taken { self.btb.lookup(pc) } else { None };
        let p = Prediction {
            taken,
            target,
            tage,
            from_loop,
        };
        self.pending = Some((pc, p));
        p
    }

    /// Trains every component with the resolved outcome and returns whether
    /// the most recent [`BranchPredictor::predict`] for this `pc`
    /// mispredicted the direction.
    ///
    /// If no prediction is pending for `pc` (e.g. the branch was fetched on
    /// the wrong path and squashed), a fresh prediction is made internally
    /// so that training still happens.
    pub fn update(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        let pred = match self.pending.take() {
            Some((ppc, p)) if ppc == pc => p,
            _ => self.predict(pc),
        };
        self.pending = None;
        self.stats.predictions += 1;
        let mispredicted = pred.taken != taken;
        if mispredicted {
            self.stats.mispredictions += 1;
        }
        if taken {
            match pred.target {
                Some(t) if t == target => {}
                _ => self.stats.btb_misses += 1,
            }
            self.btb.update(pc, target);
        }
        self.sc.update(pc, pred.tage.taken, taken);
        self.loop_pred.update(pc, taken);
        self.tage.update(pc, pred.tage, taken);
        mispredicted
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// Zeroes the statistics (predictor state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::tage_sc_l_8kb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(bp: &mut BranchPredictor, pc: u64, outcomes: &[bool]) -> u64 {
        let before = bp.stats().mispredictions;
        for &o in outcomes {
            let _ = bp.predict(pc);
            bp.update(pc, o, pc + 0x100);
        }
        bp.stats().mispredictions - before
    }

    #[test]
    fn composed_predictor_learns_biased_branch() {
        let mut bp = BranchPredictor::tage_sc_l_8kb();
        drive(&mut bp, 0x400, &[true; 128]);
        let late = drive(&mut bp, 0x400, &[true; 64]);
        assert_eq!(late, 0);
        assert!(bp.stats().accuracy() > 0.9);
    }

    #[test]
    fn loop_component_beats_long_trip_counts() {
        let mut bp = BranchPredictor::tage_sc_l_8kb();
        // Trip count 200 >> TAGE history: loop predictor must catch the exit.
        let mut pattern = vec![true; 199];
        pattern.push(false);
        for _ in 0..3 {
            drive(&mut bp, 0x500, &pattern);
        }
        let late = drive(&mut bp, 0x500, &pattern);
        assert_eq!(late, 0, "loop exit should be predicted exactly");
    }

    #[test]
    fn btb_misses_counted_for_new_targets() {
        let mut bp = BranchPredictor::tage_sc_l_8kb();
        let _ = bp.predict(0x600);
        bp.update(0x600, true, 0x1000);
        assert_eq!(bp.stats().btb_misses, 1);
        // Second time the target is cached.
        let _ = bp.predict(0x600);
        bp.update(0x600, true, 0x1000);
        assert_eq!(bp.stats().btb_misses, 1);
    }

    #[test]
    fn update_without_predict_still_trains() {
        let mut bp = BranchPredictor::tage_sc_l_8kb();
        for _ in 0..64 {
            bp.update(0x700, true, 0x800);
        }
        assert!(bp.predict(0x700).taken);
    }

    #[test]
    fn stats_mpki() {
        let s = PredictorStats {
            predictions: 100,
            mispredictions: 8,
            btb_misses: 0,
        };
        assert!((s.mpki_of(1000) - 8.0).abs() < 1e-12);
        assert!((s.accuracy() - 0.92).abs() < 1e-12);
    }
}
