//! Branch target buffer.
//!
//! Set-associative PC-to-target cache. A taken branch whose target misses
//! in the BTB costs the front-end a redirect bubble even when the
//! direction was predicted correctly.

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    tag: u64,
    target: u64,
    valid: bool,
    last_use: u64,
}

/// A set-associative branch target buffer.
///
/// # Examples
///
/// ```
/// use rar_frontend::Btb;
/// let mut btb = Btb::new(512, 4);
/// assert_eq!(btb.lookup(0x400), None);
/// btb.update(0x400, 0x1000);
/// assert_eq!(btb.lookup(0x400), Some(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<BtbEntry>,
    sets: usize,
    assoc: usize,
    tick: u64,
}

impl Btb {
    /// Creates a BTB with `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `assoc` is zero.
    #[must_use]
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(
            sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        assert!(assoc > 0, "BTB associativity must be nonzero");
        Btb {
            entries: vec![BtbEntry::default(); sets * assoc],
            sets,
            assoc,
            tick: 0,
        }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    /// Returns the cached target of the branch at `pc`, refreshing LRU.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        let set = self.set_of(pc);
        let ways = &mut self.entries[set * self.assoc..(set + 1) * self.assoc];
        for e in ways {
            if e.valid && e.tag == pc {
                e.last_use = self.tick;
                return Some(e.target);
            }
        }
        None
    }

    /// Installs or refreshes the target for the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(pc);
        let ways = &mut self.entries[set * self.assoc..(set + 1) * self.assoc];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.tag == pc) {
            e.target = target;
            e.last_use = tick;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|e| (e.valid, e.last_use))
            .expect("associativity nonzero");
        *victim = BtbEntry {
            tag: pc,
            target,
            valid: true,
            last_use: tick,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(64, 2);
        assert_eq!(b.lookup(0x100), None);
        b.update(0x100, 0x200);
        assert_eq!(b.lookup(0x100), Some(0x200));
    }

    #[test]
    fn update_replaces_target() {
        let mut b = Btb::new(64, 2);
        b.update(0x100, 0x200);
        b.update(0x100, 0x300);
        assert_eq!(b.lookup(0x100), Some(0x300));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut b = Btb::new(1, 2);
        b.update(0x100, 1);
        b.update(0x200, 2);
        let _ = b.lookup(0x100); // refresh
        b.update(0x300, 3); // evicts 0x200
        assert_eq!(b.lookup(0x100), Some(1));
        assert_eq!(b.lookup(0x200), None);
        assert_eq!(b.lookup(0x300), Some(3));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = Btb::new(3, 2);
    }
}
