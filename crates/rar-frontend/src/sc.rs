//! Statistical corrector.
//!
//! The "SC" stage of TAGE-SC-L: a small table of per-branch signed bias
//! counters that tracks whether the TAGE prediction statistically agrees
//! with the outcome. When TAGE is *weak* (low provider confidence) and the
//! bias strongly disagrees, the corrector inverts the prediction. This
//! mostly helps statistically-biased branches whose direction correlates
//! poorly with global history.

/// A per-PC statistical corrector.
///
/// # Examples
///
/// ```
/// use rar_frontend::StatisticalCorrector;
/// let mut sc = StatisticalCorrector::new(10);
/// // TAGE keeps weakly predicting `false` but the branch is 90% taken:
/// for _ in 0..32 {
///     sc.update(0x40, false, true);
/// }
/// assert_eq!(sc.correct(0x40, false, true), true, "inverts weak prediction");
/// assert_eq!(sc.correct(0x40, false, false), false, "strong predictions pass");
/// ```
#[derive(Debug, Clone)]
pub struct StatisticalCorrector {
    /// Signed agreement counters: positive = TAGE tends to be correct.
    table: Vec<i8>,
    mask: u64,
}

impl StatisticalCorrector {
    /// Creates a corrector with `2^bits` entries.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        StatisticalCorrector {
            table: vec![0; 1 << bits],
            mask: (1 << bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ (pc >> 13)) & self.mask) as usize
    }

    /// Possibly inverts a weak TAGE prediction. Strong predictions are
    /// passed through unchanged.
    #[must_use]
    pub fn correct(&self, pc: u64, tage_taken: bool, tage_weak: bool) -> bool {
        if !tage_weak {
            return tage_taken;
        }
        let c = self.table[self.index(pc)];
        if c <= -8 {
            !tage_taken
        } else {
            tage_taken
        }
    }

    /// Trains the agreement counter with the resolved outcome.
    pub fn update(&mut self, pc: u64, tage_taken: bool, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.table[idx];
        if tage_taken == taken {
            *c = (*c + 1).min(15);
        } else {
            *c = (*c - 1).max(-16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_strong_predictions() {
        let mut sc = StatisticalCorrector::new(8);
        for _ in 0..32 {
            sc.update(0x40, true, false); // TAGE persistently wrong
        }
        assert!(sc.correct(0x40, true, false), "strong prediction untouched");
        assert!(!sc.correct(0x40, true, true), "weak prediction inverted");
    }

    #[test]
    fn agreement_prevents_inversion() {
        let mut sc = StatisticalCorrector::new(8);
        for _ in 0..32 {
            sc.update(0x80, true, true); // TAGE persistently right
        }
        assert!(sc.correct(0x80, true, true));
    }

    #[test]
    fn counters_saturate() {
        let mut sc = StatisticalCorrector::new(4);
        for _ in 0..1000 {
            sc.update(0x10, false, true);
        }
        for _ in 0..8 {
            sc.update(0x10, true, true);
        }
        // After 1000 disagreements, 8 agreements land the counter exactly
        // on the inversion boundary (-16 + 8 = -8): the weak prediction is
        // still inverted, proving the counter saturated instead of
        // overflowing during the 1000 disagreements.
        assert!(
            !sc.correct(0x10, true, true),
            "saturated counter still inverts"
        );
    }
}
