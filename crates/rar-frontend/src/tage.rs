//! TAGE: the TAgged GEometric-history-length branch predictor.
//!
//! A faithful (budget-scaled) implementation of Seznec's TAGE: a bimodal
//! base predictor plus `N` partially-tagged tables indexed by hashes of the
//! program counter and geometrically longer slices of global branch
//! history. Prediction comes from the matching table with the longest
//! history (the *provider*); allocation on mispredictions steals
//! not-useful entries in longer tables.

/// Geometry of a TAGE predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// log2 entries of the bimodal base table.
    pub base_bits: u32,
    /// log2 entries of each tagged table.
    pub tagged_bits: u32,
    /// Tag width in bits for the tagged tables.
    pub tag_bits: u32,
    /// Global-history lengths per tagged table, shortest first.
    pub history_lengths: Vec<u32>,
}

impl TageConfig {
    /// A configuration scaled to roughly the paper's 8 KB budget:
    /// 4K-entry bimodal (1 KB) + 4 × 1K-entry tagged tables
    /// (~14 bits/entry ≈ 7 KB).
    #[must_use]
    pub fn budget_8kb() -> Self {
        TageConfig {
            base_bits: 12,
            tagged_bits: 10,
            tag_bits: 9,
            history_lengths: vec![5, 15, 44, 130],
        }
    }
}

impl Default for TageConfig {
    fn default() -> Self {
        TageConfig::budget_8kb()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit signed counter, -4..=3; >= 0 predicts taken.
    ctr: i8,
    /// 2-bit useful counter.
    useful: u8,
}

/// What TAGE predicted and where the prediction came from; fed back to
/// [`Tage::update`] so the update logic can reconstruct provider state.
#[derive(Debug, Clone, Copy)]
pub struct TagePrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Provider table (None = bimodal base).
    provider: Option<usize>,
    /// Prediction of the alternate (next-longest) provider.
    alt_taken: bool,
    /// Whether the provider counter was weak (|ctr| low).
    pub weak: bool,
}

/// A circular global-history register with folded-index helpers.
#[derive(Debug, Clone)]
struct GlobalHistory {
    bits: Vec<bool>,
    head: usize,
}

impl GlobalHistory {
    fn new(capacity: usize) -> Self {
        GlobalHistory {
            bits: vec![false; capacity],
            head: 0,
        }
    }

    fn push(&mut self, taken: bool) {
        self.head = (self.head + 1) % self.bits.len();
        self.bits[self.head] = taken;
    }

    /// Folds the most recent `len` history bits into `out_bits` bits.
    fn fold(&self, len: u32, out_bits: u32) -> u64 {
        let mut acc: u64 = 0;
        let mut chunk: u64 = 0;
        let mut pos = 0;
        for i in 0..len as usize {
            let idx = (self.head + self.bits.len() - i) % self.bits.len();
            chunk = (chunk << 1) | u64::from(self.bits[idx]);
            pos += 1;
            if pos == out_bits {
                acc ^= chunk;
                chunk = 0;
                pos = 0;
            }
        }
        if pos > 0 {
            acc ^= chunk;
        }
        acc & ((1u64 << out_bits) - 1)
    }
}

/// The TAGE predictor.
///
/// # Examples
///
/// ```
/// use rar_frontend::{Tage, TageConfig};
/// let mut t = Tage::new(TageConfig::budget_8kb());
/// for _ in 0..32 {
///     let p = t.predict(0x400);
///     t.update(0x400, p, true);
/// }
/// assert!(t.predict(0x400).taken);
/// ```
#[derive(Debug, Clone)]
pub struct Tage {
    config: TageConfig,
    /// 2-bit saturating counters, 0..=3; >= 2 predicts taken.
    base: Vec<u8>,
    tagged: Vec<Vec<TaggedEntry>>,
    history: GlobalHistory,
    /// Path/PC history folded per-table at predict time.
    use_alt_on_new: i8,
    rng_state: u64,
}

impl Tage {
    /// Creates a predictor with all counters weakly not-taken.
    #[must_use]
    pub fn new(config: TageConfig) -> Self {
        let base = vec![1u8; 1 << config.base_bits];
        let tagged = config
            .history_lengths
            .iter()
            .map(|_| vec![TaggedEntry::default(); 1 << config.tagged_bits])
            .collect();
        let max_hist = config.history_lengths.iter().copied().max().unwrap_or(1) as usize + 1;
        Tage {
            base,
            tagged,
            history: GlobalHistory::new(max_hist.max(64)),
            use_alt_on_new: 0,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            config,
        }
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.config.base_bits) - 1)) as usize
    }

    fn tagged_index(&self, pc: u64, table: usize) -> usize {
        let h = self
            .history
            .fold(self.config.history_lengths[table], self.config.tagged_bits);
        let pc_part = (pc >> 2) ^ (pc >> (2 + u64::from(self.config.tagged_bits)));
        ((pc_part ^ h ^ (table as u64).wrapping_mul(0x9e3779b9))
            & ((1 << self.config.tagged_bits) - 1)) as usize
    }

    fn tag(&self, pc: u64, table: usize) -> u16 {
        let h = self
            .history
            .fold(self.config.history_lengths[table], self.config.tag_bits);
        let h2 = self
            .history
            .fold(self.config.history_lengths[table], self.config.tag_bits - 1)
            << 1;
        (((pc >> 2) ^ h ^ h2) & ((1 << self.config.tag_bits) - 1)) as u16
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> TagePrediction {
        let mut provider = None;
        let mut alt = None;
        for t in (0..self.tagged.len()).rev() {
            let idx = self.tagged_index(pc, t);
            let e = &self.tagged[t][idx];
            if e.tag == self.tag(pc, t) && e.useful != u8::MAX {
                if provider.is_none() {
                    provider = Some((t, idx));
                } else {
                    alt = Some((t, idx));
                    break;
                }
            }
        }
        let base_taken = self.base[self.base_index(pc)] >= 2;
        match provider {
            Some((t, idx)) => {
                let e = &self.tagged[t][idx];
                let alt_taken = match alt {
                    Some((at, ai)) => self.tagged[at][ai].ctr >= 0,
                    None => base_taken,
                };
                let weak = e.ctr == 0 || e.ctr == -1;
                let newly_alloc = e.useful == 0 && weak;
                let taken = if newly_alloc && self.use_alt_on_new >= 0 {
                    alt_taken
                } else {
                    e.ctr >= 0
                };
                TagePrediction {
                    taken,
                    provider: Some(t),
                    alt_taken,
                    weak,
                }
            }
            None => TagePrediction {
                taken: base_taken,
                provider: None,
                alt_taken: base_taken,
                weak: self.base[self.base_index(pc)] == 1 || self.base[self.base_index(pc)] == 2,
            },
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic tie-breaking for allocation.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Updates predictor state with the resolved outcome, then shifts the
    /// outcome into global history. `pred` must be the value returned by
    /// [`Tage::predict`] for this dynamic branch.
    pub fn update(&mut self, pc: u64, pred: TagePrediction, taken: bool) {
        let mispredicted = pred.taken != taken;

        // Provider (or base) counter update.
        match pred.provider {
            Some(t) => {
                let idx = self.tagged_index(pc, t);
                let e = &mut self.tagged[t][idx];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                // Useful bit: provider correct and alternate wrong.
                if pred.taken == taken && pred.alt_taken != taken {
                    e.useful = (e.useful + 1).min(3);
                }
                if pred.taken != taken && pred.alt_taken == taken && e.useful > 0 {
                    e.useful -= 1;
                }
                // use_alt_on_new chooser.
                if e.useful == 0 && (e.ctr == 0 || e.ctr == -1) && pred.taken != pred.alt_taken {
                    let delta = if pred.alt_taken == taken { 1 } else { -1 };
                    self.use_alt_on_new = (self.use_alt_on_new + delta).clamp(-8, 7);
                }
            }
            None => {
                let idx = self.base_index(pc);
                let c = &mut self.base[idx];
                if taken {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
            }
        }

        // Allocation on misprediction into a longer-history table.
        if mispredicted {
            let start = pred.provider.map_or(0, |t| t + 1);
            if start < self.tagged.len() {
                // Gather candidate tables with useful == 0.
                let mut allocated = false;
                let r = self.next_rand();
                // Probabilistically skip the first candidate to spread
                // allocations across tables (as in Seznec's code).
                let skip = (r & 1) as usize;
                let mut candidates: Vec<usize> = Vec::new();
                for t in start..self.tagged.len() {
                    let idx = self.tagged_index(pc, t);
                    if self.tagged[t][idx].useful == 0 {
                        candidates.push(t);
                    }
                }
                for (i, &t) in candidates.iter().enumerate() {
                    if i < skip && candidates.len() > 1 {
                        continue;
                    }
                    let idx = self.tagged_index(pc, t);
                    let tag = self.tag(pc, t);
                    self.tagged[t][idx] = TaggedEntry {
                        tag,
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
                if !allocated {
                    // Decay useful bits so future allocations succeed.
                    for t in start..self.tagged.len() {
                        let idx = self.tagged_index(pc, t);
                        let u = &mut self.tagged[t][idx].useful;
                        *u = u.saturating_sub(1);
                    }
                }
            }
        }

        self.history.push(taken);
    }

    /// Number of tagged tables.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.tagged.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(t: &mut Tage, pc: u64, pattern: &[bool], reps: usize) -> u32 {
        let mut mispredicts = 0;
        for _ in 0..reps {
            for &taken in pattern {
                let p = t.predict(pc);
                if p.taken != taken {
                    mispredicts += 1;
                }
                t.update(pc, p, taken);
            }
        }
        mispredicts
    }

    #[test]
    fn learns_always_taken() {
        let mut t = Tage::new(TageConfig::budget_8kb());
        train(&mut t, 0x400, &[true], 64);
        assert!(t.predict(0x400).taken);
    }

    #[test]
    fn learns_always_not_taken() {
        let mut t = Tage::new(TageConfig::budget_8kb());
        train(&mut t, 0x404, &[false], 64);
        assert!(!t.predict(0x404).taken);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut t = Tage::new(TageConfig::budget_8kb());
        // T,N,T,N... bimodal alone cannot learn this; tagged tables can.
        let warmup = train(&mut t, 0x408, &[true, false], 200);
        let late = train(&mut t, 0x408, &[true, false], 50);
        assert!(
            late < warmup / 3,
            "should converge: warmup={warmup}, late={late}"
        );
        assert!(
            late <= 5,
            "alternating pattern should be near-perfect, got {late}"
        );
    }

    #[test]
    fn learns_short_periodic_pattern() {
        let mut t = Tage::new(TageConfig::budget_8kb());
        let pattern = [true, true, false, true, false, false];
        train(&mut t, 0x40c, &pattern, 300);
        let late = train(&mut t, 0x40c, &pattern, 50);
        assert!(late <= 15, "period-6 pattern should be learned, got {late}");
    }

    #[test]
    fn random_branch_is_hard() {
        let mut t = Tage::new(TageConfig::budget_8kb());
        // Deterministic pseudo-random outcome sequence.
        let mut x = 12345u64;
        let mut outcomes = Vec::new();
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            outcomes.push((x >> 33) & 1 == 1);
        }
        let mut mis = 0;
        for &o in &outcomes {
            let p = t.predict(0x500);
            if p.taken != o {
                mis += 1;
            }
            t.update(0x500, p, o);
        }
        let rate = f64::from(mis) / outcomes.len() as f64;
        assert!(rate > 0.3, "random outcomes should stay hard, rate={rate}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_much() {
        let mut t = Tage::new(TageConfig::budget_8kb());
        for i in 0..64u64 {
            train(&mut t, 0x1000 + i * 4, &[true], 8);
        }
        let mut wrong = 0;
        for i in 0..64u64 {
            if !t.predict(0x1000 + i * 4).taken {
                wrong += 1;
            }
        }
        assert!(wrong <= 4, "{wrong} of 64 trained branches forgotten");
    }

    #[test]
    fn history_fold_is_bounded() {
        let mut h = GlobalHistory::new(256);
        for i in 0..300 {
            h.push(i % 3 == 0);
        }
        for out_bits in [5u32, 9, 10] {
            let v = h.fold(130, out_bits);
            assert!(v < (1 << out_bits));
        }
    }
}
