//! Loop predictor: captures branches with regular trip counts.
//!
//! A loop branch taken exactly `N-1` times then not-taken once (or the
//! inverse) defeats global-history predictors when `N` exceeds the history
//! length. The loop predictor tracks per-branch iteration counts and, once
//! the same trip count is observed twice, predicts the exit exactly.

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    pc_tag: u32,
    valid: bool,
    /// Trip count observed on the last two completions (0 = unknown).
    trip: u32,
    /// Current iteration counter.
    current: u32,
    /// Confidence: number of consecutive confirmations of `trip`.
    confidence: u8,
    /// Direction of the loop body (true = body iterations are taken).
    body_taken: bool,
    age: u8,
}

/// A small fully-associative loop predictor.
///
/// # Examples
///
/// ```
/// use rar_frontend::LoopPredictor;
/// let mut lp = LoopPredictor::new(16);
/// // Loop of trip count 5: T T T T N, repeated.
/// for _ in 0..4 {
///     for i in 0..5 {
///         let taken = i != 4;
///         let _ = lp.predict(0x700);
///         lp.update(0x700, taken);
///     }
/// }
/// // Trained: predicts the 5th iteration not-taken.
/// for i in 0..5 {
///     let expect = i != 4;
///     assert_eq!(lp.predict(0x700), Some(expect));
///     lp.update(0x700, expect);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
}

impl LoopPredictor {
    /// Creates a predictor with `entries` fully-associative entries.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        LoopPredictor {
            entries: vec![LoopEntry::default(); entries],
        }
    }

    fn tag(pc: u64) -> u32 {
        (pc >> 2) as u32
    }

    fn find(&self, pc: u64) -> Option<usize> {
        let tag = Self::tag(pc);
        self.entries.iter().position(|e| e.valid && e.pc_tag == tag)
    }

    /// Predicts the branch at `pc`, or `None` when not confident.
    #[must_use]
    pub fn predict(&self, pc: u64) -> Option<bool> {
        let e = &self.entries[self.find(pc)?];
        if e.confidence < 2 || e.trip == 0 {
            return None;
        }
        // Next observed iteration index is e.current; the exit occurs at
        // iteration trip-1.
        Some(if e.current == e.trip - 1 {
            !e.body_taken
        } else {
            e.body_taken
        })
    }

    /// Trains with the resolved outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let slot = match self.find(pc) {
            Some(i) => i,
            None => {
                // Allocate: prefer invalid, else oldest (max age).
                let i = self
                    .entries
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, e)| (!e.valid, e.age))
                    .map(|(i, _)| i)
                    .expect("loop table nonempty");
                self.entries[i] = LoopEntry {
                    pc_tag: Self::tag(pc),
                    valid: true,
                    trip: 0,
                    current: 0,
                    confidence: 0,
                    body_taken: taken,
                    age: 0,
                };
                i
            }
        };
        for (i, e) in self.entries.iter_mut().enumerate() {
            if i != slot && e.valid {
                e.age = e.age.saturating_add(1);
            }
        }
        let e = &mut self.entries[slot];
        e.age = 0;
        if taken == e.body_taken {
            e.current += 1;
            // Give up on absurdly long "loops".
            if e.current > 1 << 16 {
                e.valid = false;
            }
        } else {
            // Loop exit: completed trip = iterations + the exit itself.
            let observed = e.current + 1;
            if observed == e.trip {
                e.confidence = e.confidence.saturating_add(1).min(7);
            } else {
                e.trip = observed;
                e.confidence = if e.trip > 1 { 1 } else { 0 };
            }
            e.current = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_loop(lp: &mut LoopPredictor, pc: u64, trip: usize, reps: usize) -> (u32, u32) {
        let (mut predicted, mut correct) = (0, 0);
        for _ in 0..reps {
            for i in 0..trip {
                let taken = i != trip - 1;
                if let Some(p) = lp.predict(pc) {
                    predicted += 1;
                    if p == taken {
                        correct += 1;
                    }
                }
                lp.update(pc, taken);
            }
        }
        (predicted, correct)
    }

    #[test]
    fn perfect_after_two_confirmations() {
        let mut lp = LoopPredictor::new(16);
        run_loop(&mut lp, 0x100, 20, 3); // train
        let (predicted, correct) = run_loop(&mut lp, 0x100, 20, 5);
        assert_eq!(predicted, 100, "confident for every iteration");
        assert_eq!(correct, 100, "perfect trip-count prediction");
    }

    #[test]
    fn no_confidence_without_repetition() {
        let lp = LoopPredictor::new(16);
        assert_eq!(lp.predict(0x200), None);
    }

    #[test]
    fn changed_trip_count_drops_confidence() {
        let mut lp = LoopPredictor::new(16);
        run_loop(&mut lp, 0x300, 10, 3);
        // Switch to trip 7: first pass mispredicts, then retrains.
        run_loop(&mut lp, 0x300, 7, 3);
        let (predicted, correct) = run_loop(&mut lp, 0x300, 7, 3);
        assert!(predicted > 0);
        assert_eq!(predicted, correct);
    }

    #[test]
    fn capacity_eviction_oldest() {
        let mut lp = LoopPredictor::new(2);
        run_loop(&mut lp, 0x400, 5, 3);
        run_loop(&mut lp, 0x500, 5, 3);
        run_loop(&mut lp, 0x600, 5, 3); // evicts 0x400 (oldest)
        assert_eq!(lp.predict(0x400), None);
        let (p, c) = run_loop(&mut lp, 0x600, 5, 2);
        assert_eq!(p, c);
    }

    #[test]
    fn inverted_loops_supported() {
        // Body not-taken, exit taken (e.g. exit-on-condition loops).
        let mut lp = LoopPredictor::new(16);
        for _ in 0..4 {
            for i in 0..8 {
                lp.update(0x700, i == 7);
            }
        }
        let mut all = true;
        for i in 0..8 {
            let expect = i == 7;
            match lp.predict(0x700) {
                Some(p) if p == expect => {}
                _ => all = false,
            }
            lp.update(0x700, expect);
        }
        assert!(all, "inverted loop should be predicted exactly");
    }
}
