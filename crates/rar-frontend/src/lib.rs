//! Branch prediction for the RAR simulator's front-end.
//!
//! The baseline core uses an 8 KB TAGE-SC-L predictor (Table II, from the
//! 2016 Branch Prediction Championship). This crate implements the three
//! components from scratch at a budget scaled to 8 KB:
//!
//! - [`tage`] — the TAgged GEometric-history predictor: a bimodal base
//!   table plus four partially-tagged tables indexed with geometrically
//!   increasing global-history lengths;
//! - [`loop_pred`] — the loop predictor, which captures branches with
//!   regular trip counts that defeat global history;
//! - [`sc`] — a small statistical corrector that overrides low-confidence
//!   TAGE predictions when a per-branch bias strongly disagrees;
//! - [`btb`] — a branch target buffer (target misses cost fetch bubbles).
//!
//! [`BranchPredictor`] composes all four behind the two-call interface the
//! core uses: [`BranchPredictor::predict`] at fetch, and
//! [`BranchPredictor::update`] at resolution.
//!
//! # Examples
//!
//! ```
//! use rar_frontend::BranchPredictor;
//!
//! let mut bp = BranchPredictor::tage_sc_l_8kb();
//! // A branch that is always taken trains quickly:
//! for _ in 0..64 {
//!     let p = bp.predict(0x4000);
//!     bp.update(0x4000, true, 0x4100);
//!     let _ = p;
//! }
//! assert!(bp.predict(0x4000).taken);
//! ```

pub mod btb;
pub mod loop_pred;
pub mod predictor;
pub mod sc;
pub mod tage;

pub use btb::Btb;
pub use loop_pred::LoopPredictor;
pub use predictor::{BranchPredictor, Prediction, PredictorStats};
pub use sc::StatisticalCorrector;
pub use tage::{Tage, TageConfig, TagePrediction};
