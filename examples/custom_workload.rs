//! Driving the core with a custom workload model.
//!
//! The built-in benchmark table covers the paper's SPEC set, but the
//! simulator accepts any [`rar::workloads::WorkloadParams`] — here we
//! define a synthetic "key-value store" workload (hash-probe pointer
//! chases plus a log-append stream) and measure how each core of Table I
//! scales on it, with and without RAR.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use rar::core::{Core, CoreConfig, Technique};
use rar::isa::TraceWindow;
use rar::mem::MemConfig;
use rar::workloads::{AccessPattern, WorkloadClass, WorkloadParams, WorkloadSpec};

fn kv_store() -> WorkloadSpec {
    let params = WorkloadParams {
        class: WorkloadClass::MemoryIntensive,
        load_frac: 0.30,
        store_frac: 0.14,
        branch_frac: 0.16,
        miss_load_frac: 0.15,
        footprint_bytes: 256 * 1024 * 1024,
        pattern: AccessPattern::Mixed {
            chase_frac: 0.6,
            chains: 2,
            streams: 2,
            stride: 8,
        },
        hard_branch_frac: 0.30,
        hard_branch_bias: 0.6,
        loop_trip: 10,
        segments: 12,
        body_uops: 36,
        fp_frac: 0.0,
        longlat_frac: 0.04,
        ilp: 3,
        ..WorkloadParams::base("kv-store")
    };
    WorkloadSpec::from_params(params).expect("parameters validate")
}

fn main() {
    let spec = kv_store();
    println!("custom workload: {} ({})\n", spec.name(), spec.class());
    println!(
        "{:<8} {:>4} {:>10} {:>10} {:>12}",
        "core", "ROB", "OoO IPC", "RAR IPC", "RAR MTTF (x)"
    );
    for (i, core_cfg) in CoreConfig::table_i().into_iter().enumerate() {
        let run = |tech: Technique| {
            let mut core = Core::new(
                core_cfg.clone(),
                MemConfig::baseline(),
                tech,
                TraceWindow::new(spec.trace(7)),
            );
            core.run_until_committed(8_000);
            core.reset_measurement();
            core.run_until_committed(25_000);
            (core.stats().ipc(), core.reliability_report())
        };
        let (ooo_ipc, ooo_rel) = run(Technique::Ooo);
        let (rar_ipc, rar_rel) = run(Technique::Rar);
        println!(
            "Core-{:<3} {:>4} {:>10.3} {:>10.3} {:>12.2}",
            i + 1,
            core_cfg.rob_size,
            ooo_ipc,
            rar_ipc,
            rar_rel.mttf_vs(&ooo_rel)
        );
    }
    println!("\nLarger back-ends expose more state under misses, so RAR's relative");
    println!("reliability benefit grows with the core (the paper's Figure 10 trend).");
}
