//! Fault-injection cross-check of the ACE analysis.
//!
//! The paper (footnote 1) argues that a fault-injection campaign would
//! report the same *relative* conclusions as ACE analysis. This example
//! runs the baseline core and RAR with interval logging enabled, fires a
//! Monte-Carlo strike campaign at each run, and compares the estimated
//! AVF (with its 95% confidence interval) against the analytic value.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use rar::ace::{FaultCampaign, OccupancyProfile};
use rar::core::{Core, CoreConfig, Technique};
use rar::isa::TraceWindow;
use rar::mem::MemConfig;

fn main() {
    let workload = rar::workloads::workload("gems").expect("gems is a known benchmark");
    println!("fault-injection campaign on gems (100k strikes per run)\n");
    println!(
        "{:<10} {:>12} {:>20} {:>8}",
        "technique", "analytic AVF", "injected AVF (95% CI)", "hits"
    );

    let mut results = Vec::new();
    for technique in [Technique::Ooo, Technique::Rar] {
        let mut core = Core::new(
            CoreConfig::baseline(),
            MemConfig::baseline(),
            technique,
            TraceWindow::new(workload.trace(1)),
        );
        core.enable_ace_logging();
        core.run_until_committed(8_000);
        core.reset_measurement();
        core.run_until_committed(30_000);

        let report = core.reliability_report();
        let profile = OccupancyProfile::from_log(core.ace().interval_log());
        assert_eq!(
            profile.total_abc(),
            core.ace().total_abc(),
            "interval log must reproduce the running ABC total"
        );
        let start = profile.span().start;
        let estimate = FaultCampaign::new(2024).run(
            &profile,
            &CoreConfig::baseline().capacities(),
            start..start + core.stats().cycles,
            100_000,
        );
        println!(
            "{:<10} {:>12.4} {:>13.4} ± {:.4} {:>8}",
            technique.to_string(),
            report.avf(),
            estimate.avf,
            estimate.ci95,
            estimate.hits
        );
        results.push((technique, report.avf(), estimate));
    }

    let (_, base_avf, base_est) = &results[0];
    let (_, rar_avf, rar_est) = &results[1];
    println!("\nanalytic MTTF improvement  {:.2}x", base_avf / rar_avf);
    println!(
        "injected MTTF improvement  {:.2}x",
        base_est.avf / rar_est.avf.max(1e-9)
    );
    println!("\nBoth methodologies agree on the relative conclusion, as the paper's");
    println!("footnote 1 argues; the Monte-Carlo estimate converges to the analytic");
    println!("AVF because a strike is harmful exactly when it lands on a bit whose");
    println!("occupancy interval later commits.");
}
