//! Tuning RAR's countdown timer: sweep the threshold that decides how long
//! a load may camp at the ROB head before runahead fires.
//!
//! The paper uses a 4-bit timer (threshold 15) sized so that anything
//! slower than the L1+L2+LLC tag path must be an LLC miss. A smaller
//! threshold fires runahead for loads that would have returned quickly
//! (wasted transitions); a larger one gives up reliability coverage.
//!
//! ```text
//! cargo run --release --example runahead_tuning
//! ```

use rar::core::{CoreConfig, Technique};
use rar::sim::{SimConfig, Simulation};

fn main() {
    let workload = "milc";
    let base = Simulation::run(
        &SimConfig::builder()
            .workload(workload)
            .technique(Technique::Ooo)
            .warmup(10_000)
            .instructions(30_000)
            .build(),
    );

    println!("RAR countdown-timer sweep on {workload} (relative to OoO)\n");
    println!("threshold   MTTF    ABC    IPC  intervals");
    for threshold in [3, 7, 15, 31, 63, 127] {
        let core = CoreConfig {
            runahead_timer: threshold,
            ..CoreConfig::baseline()
        };
        let r = Simulation::run(
            &SimConfig::builder()
                .workload(workload)
                .technique(Technique::Rar)
                .core(core)
                .warmup(10_000)
                .instructions(30_000)
                .build(),
        );
        println!(
            "{threshold:>9} {:>6.2} {:>6.3} {:>6.2} {:>10}",
            r.mttf_vs(&base),
            r.abc_vs(&base),
            r.ipc_vs(&base),
            r.stats.runahead_intervals
        );
    }
    println!("\nThe paper's threshold of 15 sits at the knee: early enough to cover");
    println!("nearly every blocking miss, late enough to skip L2/L3 hits.");
}
