//! Design-space walk: evaluate every technique of the paper (Table IV
//! variants plus FLUSH) on a pointer-chasing and a streaming benchmark,
//! showing how the three feature axes — early start, flush-at-exit, lean
//! execution — interact with workload character.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use rar::core::Technique;
use rar::sim::{SimConfig, SimResult, Simulation};

fn run(workload: &str, technique: Technique) -> SimResult {
    Simulation::run(
        &SimConfig::builder()
            .workload(workload)
            .technique(technique)
            .warmup(10_000)
            .instructions(30_000)
            .build(),
    )
}

fn main() {
    for workload in ["mcf", "fotonik"] {
        let base = run(workload, Technique::Ooo);
        println!(
            "== {workload} (baseline IPC {:.3}, MPKI {:.1}) ==",
            base.ipc(),
            base.mpki()
        );
        println!(
            "{:<10} {:>6} {:>6} {:>6}  features",
            "technique", "MTTF", "ABC", "IPC"
        );
        for t in Technique::ALL.into_iter().skip(1) {
            let r = run(workload, t);
            let feat = match t.features() {
                Some(f) => format!(
                    "{}{}{}",
                    if f.early { "early " } else { "" },
                    if f.flush_at_exit { "flush " } else { "" },
                    if f.lean { "lean" } else { "" }
                ),
                None => "-".to_owned(),
            };
            println!(
                "{:<10} {:>6.2} {:>6.3} {:>6.2}  {}",
                t.to_string(),
                r.mttf_vs(&base),
                r.abc_vs(&base),
                r.ipc_vs(&base),
                feat
            );
        }
        println!();
    }
    println!("Pointer chasing (mcf) bounds prefetching — runahead cannot compute");
    println!("addresses past an unreturned miss — so the reliability win comes from");
    println!("the flush; streaming (fotonik) lets runahead prefetch deep, so the");
    println!("early+lean variants also win performance.");
}
