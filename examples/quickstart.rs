//! Quickstart: simulate one benchmark under the baseline core and under
//! Reliability-Aware Runahead, and compare reliability and performance.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rar::core::Technique;
use rar::sim::{SimConfig, Simulation};

fn main() {
    let budget = 40_000;
    let warmup = 10_000;

    let base = Simulation::run(
        &SimConfig::builder()
            .workload("libquantum")
            .technique(Technique::Ooo)
            .warmup(warmup)
            .instructions(budget)
            .build(),
    );
    let rar = Simulation::run(
        &SimConfig::builder()
            .workload("libquantum")
            .technique(Technique::Rar)
            .warmup(warmup)
            .instructions(budget)
            .build(),
    );

    println!("libquantum, {budget} measured instructions\n");
    println!("                    OoO      RAR");
    println!("IPC              {:>6.3}   {:>6.3}", base.ipc(), rar.ipc());
    println!("MLP              {:>6.2}   {:>6.2}", base.mlp(), rar.mlp());
    println!(
        "MPKI             {:>6.1}   {:>6.1}",
        base.mpki(),
        rar.mpki()
    );
    println!(
        "AVF              {:>6.4}   {:>6.4}",
        base.reliability.avf(),
        rar.reliability.avf()
    );
    println!();
    println!("RAR vs OoO:");
    println!("  MTTF improvement   {:.2}x", rar.mttf_vs(&base));
    println!(
        "  ABC reduction      {:.1}%",
        (1.0 - rar.abc_vs(&base)) * 100.0
    );
    println!("  speedup            {:.2}x", rar.ipc_vs(&base));
    println!(
        "  runahead           {} intervals, {} prefetches",
        rar.stats.runahead_intervals, rar.stats.runahead_prefetches
    );
}
